//! The transport-independent estimation core.
//!
//! One [`Engine`] per server: it owns the shared [`EstimateCache`] and a
//! handle to the [`DatasetRegistry`], and turns a batch of queries into a
//! batch of estimates in three phases — cache lookups, one amortized
//! catalog fill for all misses, then per-query estimation under a single
//! read lock. The TCP server, `cegcli`, benches and tests all drive this
//! same type, so the batched path is measurable without a socket in the
//! way.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ceg_core::sync::{LockRank, OrderedMutex};
use ceg_core::trace::Trace;
use ceg_estimators::{CardinalityEstimator, OptimisticEstimator};
use ceg_graph::{LabelId, VertexId};
use ceg_query::{Pattern, QueryGraph};

use crate::cache::{EstimateCache, ProbeOutcome};
use crate::metrics::Metrics;
use crate::registry::{CommitOutcome, DatasetRegistry};

/// Entries kept in the slow-query ring buffer (oldest evicted first).
const SLOWLOG_CAP: usize = 128;

/// Default slow-query threshold: batches slower than this are logged.
pub const DEFAULT_SLOW_QUERY_THRESHOLD_MS: u64 = 250;

/// One slow-query record: which query was slow, where its batch spent
/// the time, and the epoch it ran against. Kept in a bounded ring
/// ([`Engine::slowlog`]) and surfaced by the `SLOWLOG` wire command and
/// the drain report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// Request id the server assigned at accept time (0 for direct API
    /// callers that have none).
    pub id: u64,
    /// Dataset the query ran against.
    pub dataset: String,
    /// Committed epoch at execution time.
    pub epoch: u64,
    /// Total batch latency in microseconds.
    pub micros: u64,
    /// Microseconds in the cache pass (including cache-lock wait).
    pub cache_us: u64,
    /// Microseconds filling missing catalog patterns.
    pub fill_us: u64,
    /// Microseconds in the estimation pass.
    pub estimate_us: u64,
    /// The query, in wire grammar (`<vars> <src> <dst> <label> ...`).
    pub query: String,
}

/// One estimate with its cache provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateOutcome {
    /// The estimate; `None` when the estimator cannot answer the query.
    pub value: Option<f64>,
    /// True if served from the LRU cache.
    pub cached: bool,
}

/// The fate of one deadline-bounded query: answered, or abandoned at its
/// deadline. There is no partial state — a query whose catalog fill was
/// cut short times out; its half-counted patterns are discarded, never
/// cached or reported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryOutcome {
    /// Answered (computed or cache-served).
    Done(EstimateOutcome),
    /// Abandoned: the deadline passed before the answer was ready.
    TimedOut,
}

/// Acknowledgement of one buffered `ADD_EDGE`/`DEL_EDGE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateAck {
    /// Current committed epoch (updates do not bump it; commits do).
    pub epoch: u64,
    /// Buffered operations awaiting `COMMIT`, after this one.
    pub pending: usize,
}

/// Acknowledgement of a `SNAPSHOT`: what was durably written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotAck {
    /// The committed epoch the snapshot captured.
    pub epoch: u64,
    /// Size of the written `.cegsnap` file in bytes.
    pub bytes: u64,
}

/// Counter snapshot reported over the wire by `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    pub requests: u64,
    pub batches: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub datasets: u64,
    /// Requests rejected with `BUSY` (admission control or drain).
    pub busy: u64,
    /// Requests answered with `TIMEOUT`.
    pub timeouts: u64,
    /// Estimate jobs currently queued.
    pub queued: u64,
}

/// Shared estimation core: registry + cache + counters + metrics.
pub struct Engine {
    registry: Arc<DatasetRegistry>,
    /// `LockRank::Cache`: taken after the registry map and any dataset
    /// locks are released, before the slowlog/metrics rank.
    cache: OrderedMutex<EstimateCache>,
    requests: AtomicU64,
    batches: AtomicU64,
    metrics: Arc<Metrics>,
    slowlog: OrderedMutex<VecDeque<SlowQueryEntry>>,
    slow_threshold_us: AtomicU64,
}

impl Engine {
    /// An engine over `registry` with an LRU cache of `cache_capacity`
    /// buckets (0 disables caching).
    pub fn new(registry: Arc<DatasetRegistry>, cache_capacity: usize) -> Self {
        Engine {
            registry,
            cache: OrderedMutex::new(LockRank::Cache, EstimateCache::new(cache_capacity)),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            metrics: Arc::new(Metrics::new()),
            slowlog: OrderedMutex::new(LockRank::Metrics, VecDeque::new()),
            slow_threshold_us: AtomicU64::new(DEFAULT_SLOW_QUERY_THRESHOLD_MS * 1000),
        }
    }

    /// Set the slow-query threshold: batches whose wall-clock latency
    /// reaches `ms` milliseconds are recorded in the slow-query ring.
    /// `u64::MAX / 1000` or larger effectively disables the log.
    pub fn set_slow_query_threshold_ms(&self, ms: u64) {
        self.slow_threshold_us
            .store(ms.saturating_mul(1000), Ordering::Relaxed);
    }

    /// Current slow-query threshold in milliseconds.
    pub fn slow_query_threshold_ms(&self) -> u64 {
        self.slow_threshold_us.load(Ordering::Relaxed) / 1000
    }

    /// The most recent `n` slow-query records, newest first. A poisoned
    /// ring (a panic mid-push) yields an empty log rather than killing
    /// the `SLOWLOG` handler: the records are diagnostics, not state.
    pub fn slowlog(&self, n: usize) -> Vec<SlowQueryEntry> {
        match self.slowlog.checked_lock() {
            Ok(log) => log.iter().rev().take(n).cloned().collect(),
            Err(_) => Vec::new(),
        }
    }

    /// The registry this engine serves from.
    pub fn registry(&self) -> &Arc<DatasetRegistry> {
        &self.registry
    }

    /// The shared metrics registry (latency histograms, overload
    /// counters) — the server, `cegcli` and the benches all record here.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Fast-path cache probe: answer `query` from the LRU cache without
    /// touching the worker pool or the catalog. `None` means "not
    /// cached" and records nothing — the request then takes the full
    /// path, whose own lookup counts the authoritative hit-or-miss.
    ///
    /// Connection handlers call this before enqueueing, which keeps warm
    /// traffic responsive even when every worker is grinding on cold
    /// queries (and is what the overload suite's fairness bound
    /// measures).
    pub fn try_cached(&self, dataset: &str, query: &QueryGraph) -> Option<EstimateOutcome> {
        let entry = self.registry.get(dataset)?;
        let epoch = entry.epoch();
        let hash = query.canonical_hash();
        // A poisoned cache is indistinguishable from a miss here: the
        // request falls through to the full path, which degrades the
        // same way (serves uncached, skips the store).
        let value = self
            .cache
            .checked_lock()
            .ok()?
            .peek_hashed(dataset, query, hash, epoch)?;
        self.requests.fetch_add(1, Ordering::Relaxed);
        Some(EstimateOutcome {
            value,
            cached: true,
        })
    }

    /// Estimate one query (a batch of one).
    pub fn estimate(&self, dataset: &str, query: &QueryGraph) -> Result<EstimateOutcome, String> {
        self.estimate_batch(dataset, std::slice::from_ref(query))?
            .into_iter()
            .next()
            .ok_or_else(|| "internal error: batch of one produced no outcome".to_string())
    }

    /// Estimate a batch of queries against one dataset.
    ///
    /// Phases: (1) one cache pass under the cache lock; (2) one
    /// `ensure_patterns` call for **all** misses, so overlapping patterns
    /// across the batch are counted once and the catalog write lock is
    /// taken at most once; (3) estimation for the misses under a single
    /// catalog read lock; (4) one cache pass to store the new results.
    pub fn estimate_batch(
        &self,
        dataset: &str,
        queries: &[QueryGraph],
    ) -> Result<Vec<EstimateOutcome>, String> {
        let deadlines = vec![None; queries.len()];
        Ok(self
            .estimate_batch_deadline(dataset, queries, &deadlines)?
            .into_iter()
            .map(|o| match o {
                QueryOutcome::Done(outcome) => outcome,
                QueryOutcome::TimedOut => unreachable!("no deadline, no timeout"),
            })
            .collect())
    }

    /// [`Engine::estimate_batch`] with a per-query deadline (`None` =
    /// unbounded). A query whose deadline has already passed at entry is
    /// answered `TimedOut` without any work; the rest take the usual
    /// cache pass, one shared catalog fill (bounded by the **latest**
    /// deadline among the misses, so no query's counting outlives every
    /// waiter), and an estimation pass. A miss whose sub-pattern counts
    /// did not all complete by its deadline is `TimedOut` — partial
    /// counts are discarded, never cached, never reported.
    pub fn estimate_batch_deadline(
        &self,
        dataset: &str,
        queries: &[QueryGraph],
        deadlines: &[Option<Instant>],
    ) -> Result<Vec<QueryOutcome>, String> {
        self.batch_inner(dataset, queries, deadlines, None, None)
    }

    /// [`Engine::estimate_batch_deadline`] with the server's per-request
    /// ids attached (they label slow-query records).
    pub fn estimate_batch_deadline_ids(
        &self,
        dataset: &str,
        queries: &[QueryGraph],
        deadlines: &[Option<Instant>],
        ids: &[u64],
    ) -> Result<Vec<QueryOutcome>, String> {
        self.batch_inner(dataset, queries, deadlines, Some(ids), None)
    }

    /// Estimate one query with an **enabled** [`Trace`]: the result is
    /// bit-identical to [`Engine::estimate`] (same cache, same catalog,
    /// same estimator), plus the recorded span/counter breakdown. This
    /// is the handler behind `EXPLAIN_ESTIMATE`.
    pub fn explain(
        &self,
        dataset: &str,
        query: &QueryGraph,
        deadline: Option<Instant>,
    ) -> Result<(QueryOutcome, Trace), String> {
        let mut trace = Trace::enabled();
        let outcomes = self.batch_inner(
            dataset,
            std::slice::from_ref(query),
            &[deadline],
            None,
            Some(&mut trace),
        )?;
        let outcome = outcomes
            .into_iter()
            .next()
            .ok_or_else(|| "internal error: batch of one produced no outcome".to_string())?;
        Ok((outcome, trace))
    }

    /// The one batched estimation path everything above funnels into.
    /// `ids` (when given) label slow-query records with the server's
    /// request ids; `trace` (when given) records the span/counter
    /// breakdown. Both are `None` on the hot path, which then differs
    /// from the pre-trace code by four `Instant::now` calls per batch.
    fn batch_inner(
        &self,
        dataset: &str,
        queries: &[QueryGraph],
        deadlines: &[Option<Instant>],
        ids: Option<&[u64]>,
        mut trace: Option<&mut Trace>,
    ) -> Result<Vec<QueryOutcome>, String> {
        debug_assert_eq!(queries.len(), deadlines.len());
        let started = Instant::now();
        let entry = self
            .registry
            .get(dataset)
            .ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
        self.requests
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);

        // The cache is epoch-aware: entries stored before the dataset's
        // last committed update are tagged with an older epoch and miss.
        let epoch = entry.epoch();
        // The WL canonical hash is the expensive part of a cache probe;
        // compute it outside the cache lock so concurrent workers only
        // serialize on the map operations themselves.
        let hashes: Vec<u64> = queries.iter().map(|q| q.canonical_hash()).collect();
        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; queries.len()];
        let mut miss_indices: Vec<usize> = Vec::new();
        let (mut hits, mut stale_misses, mut cold_misses) = (0u64, 0u64, 0u64);
        let cache_started = Instant::now();
        let lock_wait_us;
        {
            let now = Instant::now();
            // A poisoned cache (a panic under the cache lock) must not
            // take estimation down with it: every query is treated as a
            // cold miss and answered from the catalog, uncached.
            let mut cache = self.cache.checked_lock().ok();
            lock_wait_us = now.elapsed().as_micros() as u64;
            for (i, q) in queries.iter().enumerate() {
                if deadlines[i].is_some_and(|d| now >= d) {
                    self.metrics.record_timeout();
                    outcomes[i] = Some(QueryOutcome::TimedOut);
                    continue;
                }
                let probe = match cache.as_mut() {
                    Some(cache) => cache.probe_hashed(dataset, q, hashes[i], epoch),
                    None => ProbeOutcome::ColdMiss,
                };
                match probe {
                    ProbeOutcome::Hit(value) => {
                        hits += 1;
                        outcomes[i] = Some(QueryOutcome::Done(EstimateOutcome {
                            value,
                            cached: true,
                        }));
                    }
                    ProbeOutcome::StaleMiss => {
                        stale_misses += 1;
                        miss_indices.push(i);
                    }
                    ProbeOutcome::ColdMiss => {
                        cold_misses += 1;
                        miss_indices.push(i);
                    }
                }
            }
        }
        let cache_us = cache_started.elapsed().as_micros() as u64;
        if let Some(t) = trace.as_deref_mut() {
            t.counter("epoch", epoch);
            t.record_span_micros("lock_wait", lock_wait_us);
            t.record_span_micros("cache_probe", cache_us);
            t.counter("cache_hit", hits);
            t.counter("cache_stale_miss", stale_misses);
            t.counter("cache_cold_miss", cold_misses);
        }
        let mut fill_us = 0u64;
        let mut estimate_us = 0u64;
        if !miss_indices.is_empty() {
            let miss_queries: Vec<QueryGraph> =
                miss_indices.iter().map(|&i| queries[i].clone()).collect();
            // One shared fill for the whole group, bounded by the latest
            // miss deadline: counting may only be abandoned once *every*
            // waiting query's deadline has passed, so an early deadline
            // can never starve a patient query of its patterns. An
            // unbounded query in the group lifts the bound entirely.
            let group_deadline = miss_indices
                .iter()
                .map(|&i| deadlines[i])
                .try_fold(None::<Instant>, |acc, d| {
                    d.map(|d| Some(acc.map_or(d, |a| a.max(d))))
                })
                .flatten();
            let fill_started = Instant::now();
            // The poison-aware variant: a dataset whose catalog lock was
            // poisoned by an earlier panic answers with a typed error
            // (`dataset ... unavailable: ... poisoned`) instead of
            // propagating the panic into this worker.
            let ensured =
                entry.try_ensure_patterns_deadline_stats(&miss_queries, group_deadline)?;
            fill_us = fill_started.elapsed().as_micros() as u64;
            self.metrics.record_kernel(&ensured.fill.kernel);
            if let Some(t) = trace.as_deref_mut() {
                if ensured.fill.patterns_counted > 0 {
                    t.record_span_micros("catalog_fill", fill_us);
                }
                t.counter("view_overlay", ensured.overlay as u64);
                t.counter("catalog_patterns_counted", ensured.fill.patterns_counted);
                t.counter("catalog_patterns_added", ensured.added as u64);
                t.counter(
                    "catalog_fill_max_pattern_us",
                    ensured.fill.max_pattern_micros,
                );
                let k = &ensured.fill.kernel;
                t.counter("kernel_candidates", k.candidates);
                t.counter("kernel_intersect_merge", k.merge_intersections);
                t.counter("kernel_intersect_gallop", k.gallop_intersections);
                t.counter("kernel_intersect_bitset", k.bitset_intersections);
                t.counter("kernel_suffix_shortcuts", k.suffix_shortcuts);
                t.counter("kernel_memo_hits", k.memo_hits);
                t.counter("kernel_budget_consumed", k.budget_consumed);
                t.counter("kernel_deepest_level", k.deepest_level);
            }
            let h = entry.h();
            // `None` marks a query whose fill was abandoned (incomplete
            // patterns): completeness is checked under the same catalog
            // read lock as the estimation, so a concurrent fill cannot
            // make the two passes disagree.
            let estimate_started = Instant::now();
            let mut degenerate = 0u64;
            let values: Vec<Option<Option<f64>>> = entry.try_with_markov(|table| {
                let mut est = OptimisticEstimator::recommended(table);
                miss_queries
                    .iter()
                    .map(|q| {
                        let complete = q
                            .connected_subsets_up_to(h)
                            .into_iter()
                            .all(|mask| table.card(&Pattern::of_subquery(q, mask)).is_some());
                        if !complete {
                            return None;
                        }
                        // The CEG estimators assume connected, non-empty
                        // queries; anything else is unanswerable, not a
                        // panic (wire input is rejected at parse time,
                        // this guards direct API callers).
                        if q.num_edges() == 0 || !q.is_connected() {
                            Some(None)
                        } else {
                            // A degenerate catalog (zero-count patterns
                            // dividing each other) can surface NaN/inf;
                            // that is "cannot answer", never a number we
                            // put on the wire.
                            match est.estimate(q) {
                                Some(v) if !v.is_finite() => {
                                    degenerate += 1;
                                    Some(None)
                                }
                                v => Some(v),
                            }
                        }
                    })
                    .collect()
            })?;
            estimate_us = estimate_started.elapsed().as_micros() as u64;
            for _ in 0..degenerate {
                self.metrics.record_estimator_degenerate();
            }
            if let Some(t) = trace {
                t.record_span_micros("estimate", estimate_us);
                t.counter("estimator_degenerate", degenerate);
            }
            // Poisoned cache: the fresh results are still served below,
            // they just are not stored (next identical query recomputes).
            let mut cache = self.cache.checked_lock().ok();
            for (&i, value) in miss_indices.iter().zip(&values) {
                match value {
                    Some(value) => {
                        if let Some(cache) = cache.as_mut() {
                            cache.store_hashed(dataset, &queries[i], hashes[i], epoch, *value);
                        }
                        outcomes[i] = Some(QueryOutcome::Done(EstimateOutcome {
                            value: *value,
                            cached: false,
                        }));
                    }
                    None => {
                        self.metrics.record_timeout();
                        outcomes[i] = Some(QueryOutcome::TimedOut);
                    }
                }
            }
        }
        let total_us = started.elapsed().as_micros() as u64;
        let threshold_us = self.slow_threshold_us.load(Ordering::Relaxed);
        if total_us >= threshold_us && !miss_indices.is_empty() {
            self.record_slow(
                dataset,
                epoch,
                total_us,
                cache_us,
                fill_us,
                estimate_us,
                queries,
                &miss_indices,
                ids,
            );
        }
        // Every slot was filled: hits/timeouts in the cache pass, the
        // rest in the store pass above.
        Ok(outcomes
            .into_iter()
            .map(|o| o.expect("outcome slot left unfilled"))
            .collect())
    }

    /// Push one slow-query record per cache-missing query of a batch that
    /// crossed the threshold (hits were served from the cache and did not
    /// cause the latency). The ring holds [`SLOWLOG_CAP`] entries.
    #[allow(clippy::too_many_arguments)]
    fn record_slow(
        &self,
        dataset: &str,
        epoch: u64,
        total_us: u64,
        cache_us: u64,
        fill_us: u64,
        estimate_us: u64,
        queries: &[QueryGraph],
        miss_indices: &[usize],
        ids: Option<&[u64]>,
    ) {
        // Best-effort: a poisoned ring drops the records, never the batch.
        let Ok(mut log) = self.slowlog.checked_lock() else {
            return;
        };
        for &i in miss_indices {
            if log.len() == SLOWLOG_CAP {
                log.pop_front();
            }
            log.push_back(SlowQueryEntry {
                id: ids.map_or(0, |ids| ids.get(i).copied().unwrap_or(0)),
                dataset: dataset.to_string(),
                epoch,
                micros: total_us,
                cache_us,
                fill_us,
                estimate_us,
                query: crate::protocol::format_query(&queries[i]),
            });
        }
    }

    /// Buffer an edge insertion on a dataset (visible after `COMMIT`).
    pub fn add_edge(
        &self,
        dataset: &str,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    ) -> Result<UpdateAck, String> {
        let entry = self
            .registry
            .get(dataset)
            .ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
        let (epoch, pending) = entry.add_edge(src, dst, label)?;
        Ok(UpdateAck { epoch, pending })
    }

    /// Buffer an edge deletion on a dataset (visible after `COMMIT`).
    pub fn del_edge(
        &self,
        dataset: &str,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    ) -> Result<UpdateAck, String> {
        let entry = self
            .registry
            .get(dataset)
            .ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
        let (epoch, pending) = entry.del_edge(src, dst, label)?;
        Ok(UpdateAck { epoch, pending })
    }

    /// Commit a dataset's pending updates: apply the delta, incrementally
    /// maintain the catalog and bump the epoch (which invalidates the
    /// dataset's cached estimates). On a dataset with durability
    /// attached the effective delta hits the WAL (fsynced) before it is
    /// applied; a WAL failure refuses the commit with nothing applied
    /// and the ops still pending.
    pub fn commit(&self, dataset: &str) -> Result<CommitOutcome, String> {
        let entry = self
            .registry
            .get(dataset)
            .ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
        match entry.try_commit() {
            Ok(outcome) => {
                if outcome.wal_bytes > 0 {
                    self.metrics.record_wal_commit(outcome.wal_bytes);
                }
                Ok(outcome)
            }
            Err(e) => {
                self.metrics.record_wal_error();
                Err(format!("commit not durable: {e}"))
            }
        }
    }

    /// Rotate a dataset's WAL if either configured trigger fires (see
    /// [`crate::registry::DatasetEntry::maybe_rotate`]); the server calls
    /// this after each
    /// acked `COMMIT`. Rotation failures are reported but change no
    /// committed state — the log keeps growing and the next trigger
    /// retries.
    pub fn maybe_rotate(
        &self,
        dataset: &str,
        rotate_bytes: u64,
        snapshot_interval_commits: u64,
    ) -> Result<Option<crate::registry::RotateOutcome>, String> {
        let entry = self
            .registry
            .get(dataset)
            .ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
        let rotated = entry
            .maybe_rotate(rotate_bytes, snapshot_interval_commits)
            .map_err(|e| format!("WAL rotation failed: {e}"))?;
        if rotated.is_some() {
            self.metrics.record_wal_rotation();
        }
        Ok(rotated)
    }

    /// Fold one boot-time recovery's [`crate::registry::RecoveryReport`]
    /// into the metrics (`cegcli serve --data-dir` calls this per
    /// recovered dataset).
    pub fn record_recovery(&self, report: &crate::registry::RecoveryReport) {
        self.metrics
            .record_wal_recovery(report.replayed_commits as u64, report.torn_tail.is_some());
    }

    /// Persist a dataset's committed graph, Markov catalog and epoch to
    /// a `.cegsnap` file at `path` (on this process's filesystem). The
    /// pending (uncommitted) update buffer is deliberately excluded: a
    /// snapshot captures committed state only.
    ///
    /// This is the handler behind the unauthenticated `SNAPSHOT` wire
    /// command, i.e. a remote-triggered filesystem write. The path must
    /// end in `.cegsnap`, so a client can only (atomically) replace
    /// snapshot files — never clobber arbitrary files the server
    /// process can write.
    pub fn snapshot(&self, dataset: &str, path: &str) -> Result<SnapshotAck, String> {
        if !path.ends_with(".cegsnap") {
            return Err("snapshot path must end in .cegsnap".into());
        }
        let entry = self
            .registry
            .get(dataset)
            .ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
        let (epoch, bytes) = entry
            .write_snapshot(path)
            .map_err(|e| format!("snapshot failed: {e}"))?;
        Ok(SnapshotAck { epoch, bytes })
    }

    /// Snapshot of the engine counters. A poisoned cache reports its
    /// counters as zero — `STATS` keeps answering on a degraded server.
    pub fn stats(&self) -> EngineStats {
        let (cache_hits, cache_misses) = match self.cache.checked_lock() {
            Ok(cache) => (cache.hits(), cache.misses()),
            Err(_) => (0, 0),
        };
        EngineStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            datasets: self.registry.len() as u64,
            busy: self.metrics.busy(),
            timeouts: self.metrics.timeouts(),
            queued: self.metrics.queued(),
        }
    }

    /// The full metrics dump behind the `METRICS` wire command: every
    /// [`Metrics::snapshot`] counter plus engine-level cache and
    /// per-dataset epoch/pending gauges, as stable `(key, value)` pairs.
    pub fn metrics_snapshot(&self) -> Vec<(String, u64)> {
        let mut out = self.metrics.snapshot();
        let (hits, misses, stale, entries) = match self.cache.checked_lock() {
            Ok(cache) => (
                cache.hits(),
                cache.misses(),
                cache.stale_misses(),
                cache.len() as u64,
            ),
            Err(_) => (0, 0, 0, 0),
        };
        out.push((
            "requests_total".into(),
            self.requests.load(Ordering::Relaxed),
        ));
        out.push(("batches_total".into(), self.batches.load(Ordering::Relaxed)));
        out.push(("cache_hits".into(), hits));
        out.push(("cache_misses".into(), misses));
        out.push(("cache_stale_misses".into(), stale));
        out.push(("cache_entries".into(), entries));
        out.push(("datasets".into(), self.registry.len() as u64));
        for name in self.registry.names() {
            if let Some(entry) = self.registry.get(&name) {
                out.push((format!("dataset_{name}_epoch"), entry.epoch()));
                out.push((
                    format!("dataset_{name}_pending_ops"),
                    entry.pending_len() as u64,
                ));
                out.push((
                    format!("dataset_{name}_catalog_entries"),
                    entry.catalog_len() as u64,
                ));
            }
        }
        out
    }

    /// The Prometheus text-exposition dump behind `METRICS_PROM`: every
    /// [`Metrics::prom_lines`] family plus engine-level cache counters
    /// and per-dataset gauges (dataset names become label values, so the
    /// family set is stable regardless of what is registered).
    pub fn metrics_prom(&self) -> Vec<String> {
        let mut out = self.metrics.prom_lines();
        let (hits, misses, stale, entries) = match self.cache.checked_lock() {
            Ok(cache) => (
                cache.hits(),
                cache.misses(),
                cache.stale_misses(),
                cache.len() as u64,
            ),
            Err(_) => (0, 0, 0, 0),
        };
        let counters = [
            ("ceg_requests_total", self.requests.load(Ordering::Relaxed)),
            ("ceg_batches_total", self.batches.load(Ordering::Relaxed)),
            ("ceg_cache_hits_total", hits),
            ("ceg_cache_misses_total", misses),
            ("ceg_cache_stale_misses_total", stale),
        ];
        for (name, value) in counters {
            out.push(format!("# TYPE {name} counter"));
            out.push(format!("{name} {value}"));
        }
        let gauges = [
            ("ceg_cache_entries", entries),
            ("ceg_datasets", self.registry.len() as u64),
        ];
        for (name, value) in gauges {
            out.push(format!("# TYPE {name} gauge"));
            out.push(format!("{name} {value}"));
        }
        // Per-dataset families are omitted entirely when no dataset is
        // registered — a `# TYPE` line with zero samples is invalid
        // exposition (and our own checker rejects it).
        let names = self.registry.names();
        if !names.is_empty() {
            for (family, get) in [
                ("ceg_dataset_epoch", 0usize),
                ("ceg_dataset_pending_ops", 1),
                ("ceg_dataset_catalog_entries", 2),
            ] {
                out.push(format!("# TYPE {family} gauge"));
                for name in &names {
                    if let Some(entry) = self.registry.get(name) {
                        let value = match get {
                            0 => entry.epoch(),
                            1 => entry.pending_len() as u64,
                            _ => entry.catalog_len() as u64,
                        };
                        out.push(format!("{family}{{dataset=\"{name}\"}} {value}"));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn engine() -> Engine {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(3, 4, 0);
        let registry = Arc::new(DatasetRegistry::new());
        registry.insert_graph("toy", b.build(), 2);
        Engine::new(registry, 64)
    }

    #[test]
    fn repeated_query_is_served_from_cache() {
        let engine = engine();
        let q = templates::path(2, &[0, 1]);
        let first = engine.estimate("toy", &q).unwrap();
        assert!(!first.cached);
        assert_eq!(first.value, Some(2.0)); // exact: the query fits in the table
        let second = engine.estimate("toy", &q).unwrap();
        assert!(second.cached);
        assert_eq!(second.value, first.value);
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn batch_mixes_hits_and_misses() {
        let engine = engine();
        let a = templates::path(2, &[0, 1]);
        let b = templates::path(2, &[1, 0]);
        engine.estimate("toy", &a).unwrap();
        let out = engine.estimate_batch("toy", &[a, b]).unwrap();
        assert!(out[0].cached);
        assert!(!out[1].cached);
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let engine = engine();
        let q = templates::path(2, &[0, 1]);
        assert!(engine.estimate("nope", &q).is_err());
    }

    #[test]
    fn commit_invalidates_cached_estimates() {
        let engine = engine();
        let q = templates::path(2, &[0, 1]);
        assert_eq!(engine.estimate("toy", &q).unwrap().value, Some(2.0));
        assert!(engine.estimate("toy", &q).unwrap().cached);

        // Buffered updates change nothing: still a (valid) cache hit.
        let ack = engine.add_edge("toy", 4, 0, 1).unwrap();
        assert_eq!((ack.epoch, ack.pending), (0, 1));
        assert!(engine.estimate("toy", &q).unwrap().cached);

        // Commit: epoch bumps, the pre-update entry must miss, and the
        // recomputed estimate reflects the new graph (3->4 now extends).
        let outcome = engine.commit("toy").unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.added, 1);
        let after = engine.estimate("toy", &q).unwrap();
        assert!(!after.cached, "stale cache entry must miss after commit");
        assert_eq!(after.value, Some(3.0));
        // And the fresh value is cached again at the new epoch.
        assert!(engine.estimate("toy", &q).unwrap().cached);
        assert!(engine.add_edge("nope", 0, 1, 0).is_err());
        assert!(engine.commit("nope").is_err());
    }

    #[test]
    fn unanswerable_queries_yield_none_not_panic() {
        use ceg_query::{QueryEdge, QueryGraph};
        let engine = engine();
        // Zero edges and a disconnected pair: the CEG estimators assert
        // on both, so the engine must answer None instead of unwinding.
        let empty = QueryGraph::new(1, vec![]);
        let disconnected =
            QueryGraph::new(4, vec![QueryEdge::new(0, 1, 0), QueryEdge::new(2, 3, 1)]);
        for q in [empty, disconnected] {
            let out = engine.estimate("toy", &q).unwrap();
            assert_eq!(out.value, None);
            // And the verdict is cached like any other result.
            assert!(engine.estimate("toy", &q).unwrap().cached);
        }
    }
}
