//! The dataset registry: load graphs and catalogs once, share forever —
//! and, since the live-update work, mutate them safely while serving.
//!
//! `cegcli estimate` pays the full cost of loading the graph and building
//! the Markov catalog on every invocation. The registry is the service's
//! fix: each dataset is loaded once into a [`DatasetEntry`] and shared
//! across requests and worker threads via `Arc`.
//!
//! # Live updates
//!
//! A dataset's committed state is an **epoch-versioned layering**: an
//! immutable CSR base graph plus a committed [`GraphDelta`] overlay, with
//! the Markov catalog kept consistent with the pair. Edge updates buffer
//! in a *pending* delta ([`DatasetEntry::add_edge`] /
//! [`DatasetEntry::del_edge`]) that readers never see; a
//! [`DatasetEntry::commit`] folds it in under the state write lock:
//!
//! 1. the pending delta is normalized against the committed view (adds
//!    of present edges and dels of absent ones are no-ops); an
//!    effectively empty commit returns without bumping the epoch,
//! 2. the effective delta merges into the committed overlay; once the
//!    overlay exceeds the **rebase threshold** it is folded into a fresh
//!    base CSR ([`ceg_graph::LabeledGraph::rebase`] — only touched
//!    relations are rebuilt, the rest are `Arc`-shared),
//! 3. the catalog is **incrementally maintained**
//!    ([`MarkovTable::refresh_touched`]): only entries naming a touched
//!    label are recounted, on the overlay or the rebased base,
//! 4. the epoch is bumped, which invalidates every cached estimate tagged
//!    with an older epoch (see [`crate::cache::EstimateCache`]).
//!
//! Invariant: **the catalog always describes the committed graph of the
//! current epoch** — commit holds the write lock across steps 2–4, so an
//! estimator can never observe a new graph with stale statistics (at the
//! price of estimates blocking for the touched-label recount, which is
//! the explicit cost of `COMMIT`, not of `ESTIMATE`).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ceg_catalog::io::load_markov;
use ceg_catalog::{count_patterns_budgeted_stats, FillStats, MarkovTable};
use ceg_core::sync::{LockPoisoned, LockRank, OrderedMutex, OrderedRwLock};
use ceg_graph::io::load_graph;
use ceg_graph::vfs::{OsStorage, Storage};
use ceg_graph::wal::{WalOp, WalWriter};
use ceg_graph::{
    FxHashMap, FxHashSet, GraphDelta, LabelId, LabeledGraph, OverlayGraph, VertexId, VertexRemap,
};
use ceg_query::{Pattern, QueryGraph};

/// What one [`DatasetEntry::commit`] did, echoed over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Epoch after the commit (unchanged if the commit was a no-op).
    pub epoch: u64,
    /// Edges actually inserted (pending adds the graph lacked).
    pub added: usize,
    /// Edges actually deleted (pending dels the graph had).
    pub deleted: usize,
    /// Catalog entries recounted by incremental maintenance.
    pub recounted: usize,
    /// True if the overlay was folded into a fresh base CSR.
    pub rebased: bool,
    /// WAL bytes appended (and fsynced) for this commit before it was
    /// applied — 0 for no-op commits and for datasets running without
    /// durability attached. Not echoed over the wire.
    pub wal_bytes: u64,
}

/// Durable-commit state of one dataset: the open WAL appender plus the
/// storage and snapshot path rotation folds it into. Absent (the common
/// test configuration) a dataset commits in memory only.
struct Durability {
    storage: Arc<dyn Storage>,
    snap_path: PathBuf,
    writer: WalWriter,
    /// Effective commits appended since the last snapshot fold — the
    /// `snapshot_interval_commits` rotation trigger.
    commits_since_snapshot: u64,
    /// Set when a failed append could not be repaired (torn bytes may
    /// follow the durable prefix). Every later commit is refused: a new
    /// record after torn bytes would be invisible to recovery.
    poisoned: bool,
}

/// What [`DatasetEntry::recover`] replayed, for logs and metrics.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Epoch persisted in the snapshot the replay started from.
    pub snapshot_epoch: u64,
    /// Committed transactions replayed from the WAL tail.
    pub replayed_commits: usize,
    /// Edge operations inside those transactions.
    pub replayed_ops: usize,
    /// Epoch after replay — what the last acked commit reached.
    pub epoch: u64,
    /// Present when the log ended in damage (torn tail from a crash):
    /// the scanner's diagnosis of where and why the scan stopped. The
    /// damage is already truncated away by the time recovery returns.
    pub torn_tail: Option<String>,
}

/// What one WAL rotation did: the log was folded into a fresh snapshot
/// and truncated back to an empty header.
#[derive(Debug, Clone, Copy)]
pub struct RotateOutcome {
    /// Epoch the fold captured.
    pub epoch: u64,
    /// Size of the written snapshot.
    pub snapshot_bytes: u64,
    /// WAL bytes retired by the truncate (header excluded).
    pub wal_bytes_folded: u64,
}

/// What one [`DatasetEntry::ensure_patterns_deadline_stats`] call did —
/// the catalog-fill half of an `EXPLAIN_ESTIMATE` breakdown.
#[derive(Debug, Default, Clone, Copy)]
pub struct EnsureOutcome {
    /// Patterns inserted into the catalog by this call.
    pub added: usize,
    /// Counting-kernel work done filling them (zero if nothing was
    /// missing). Accumulated across stale-epoch retries.
    pub fill: FillStats,
    /// True if the counts ran on the overlay view (committed delta over
    /// the base CSR) rather than the base CSR directly.
    pub overlay: bool,
}

/// Committed, epoch-versioned dataset state — everything an estimate
/// reads, behind one `RwLock` so graph and catalog can never disagree.
struct DatasetState {
    base: Arc<LabeledGraph>,
    /// Committed delta not yet folded into `base` (kept normalized
    /// against it, and below the rebase threshold).
    overlay: GraphDelta,
    epoch: u64,
    markov: MarkovTable,
}

impl DatasetState {
    /// Edge presence in the committed view (overlay over base).
    fn has_edge(&self, src: VertexId, dst: VertexId, label: LabelId) -> bool {
        self.overlay
            .edge_override(src, dst, label)
            .unwrap_or_else(|| self.base.has_edge(src, dst, label))
    }
}

/// One registered dataset: the epoch-versioned graph state plus its
/// shared, growable catalog and the pending (uncommitted) update buffer.
pub struct DatasetEntry {
    name: String,
    h: usize,
    /// Worker threads used when counting patterns (catalog growth and
    /// commit-time recounts).
    jobs: usize,
    /// Fold the committed overlay into a fresh base CSR once it holds at
    /// least this many edge operations.
    rebase_threshold: usize,
    /// Refuse to buffer more than this many uncommitted operations.
    pending_cap: usize,
    /// Degree-descending vertex renumbering applied to the stored graph
    /// so the counting kernel's bitsets see hub ids clustered into few
    /// words. Computed once from the graph at construction; ids
    /// introduced later by updates map to themselves. All wire-visible
    /// ids stay **external**: updates translate external→internal at the
    /// buffering boundary, WAL records and snapshots are written in
    /// external numbering (so both are invariant to how any particular
    /// process numbered its vertices).
    remap: VertexRemap,
    /// Mirror of `state.epoch` for lock-free reads on the estimate path.
    epoch: AtomicU64,
    state: OrderedRwLock<DatasetState>,
    pending: OrderedMutex<GraphDelta>,
    /// Crash-safety state, attached by [`DatasetEntry::attach_durability`]
    /// or [`DatasetEntry::recover`]. Lock order: `durability` is taken
    /// **before** `state`/`pending`, everywhere — commit holds it across
    /// the WAL append and the in-memory apply so the log's transaction
    /// order always matches the epoch order. The `LockRank` order
    /// (`Durability < DatasetState < PendingDelta`) makes the debug
    /// build enforce exactly that.
    durability: OrderedMutex<Option<Durability>>,
}

/// Default overlay size at which a commit folds into a fresh CSR: scale
/// with the base so small datasets rebase eagerly (cheap anyway) and big
/// ones amortize.
fn default_rebase_threshold(num_edges: usize) -> usize {
    (num_edges / 8).max(256)
}

/// Largest vertex id an update may introduce **beyond** the dataset's
/// current domain. Vertices the graph already has are always updatable
/// (a 45M-vertex dataset accepts updates across its whole domain); this
/// bound only stops a hostile id from forcing a giant domain allocation
/// at rebase time.
pub const MAX_UPDATE_VERTEX: VertexId = (1 << 24) - 1;

/// Largest label an update may introduce beyond the dataset's current
/// label set (one relation pair of CSRs exists per label).
pub const MAX_UPDATE_LABEL: LabelId = 4095;

/// Default cap on buffered (uncommitted) operations per dataset: a
/// client that streams updates without ever committing is refused
/// instead of growing server memory without bound.
pub const MAX_PENDING_OPS: usize = 1 << 20;

impl DatasetEntry {
    /// Wrap an already-loaded graph and catalog. Catalog gaps are counted
    /// serially; see [`DatasetEntry::with_jobs`].
    pub fn new(name: impl Into<String>, graph: LabeledGraph, markov: MarkovTable) -> Self {
        let rebase_threshold = default_rebase_threshold(graph.num_edges());
        // Renumber at the door: the stored graph runs in internal
        // (degree-descending) numbering, and because the permutation is
        // recomputed deterministically from the external graph it never
        // needs persisting — a restored snapshot renumbers identically.
        let remap = VertexRemap::degree_descending(&graph);
        let graph = remap.apply(&graph);
        DatasetEntry {
            name: name.into(),
            h: markov.h(),
            jobs: 1,
            rebase_threshold,
            pending_cap: MAX_PENDING_OPS,
            remap,
            epoch: AtomicU64::new(0),
            state: OrderedRwLock::new(
                LockRank::DatasetState,
                DatasetState {
                    base: Arc::new(graph),
                    overlay: GraphDelta::new(),
                    epoch: 0,
                    markov,
                },
            ),
            pending: OrderedMutex::new(LockRank::PendingDelta, GraphDelta::new()),
            durability: OrderedMutex::new(LockRank::Durability, None),
        }
    }

    /// Set the number of worker threads used to count missing patterns
    /// when the catalog grows (`cegcli serve --jobs` lands here).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Override the overlay size at which a commit folds the committed
    /// delta into a fresh base CSR (tests use tiny values to exercise
    /// both layering regimes).
    pub fn with_rebase_threshold(mut self, threshold: usize) -> Self {
        self.rebase_threshold = threshold.max(1);
        self
    }

    /// Override the pending-operation cap (tests use tiny values).
    pub fn with_pending_cap(mut self, cap: usize) -> Self {
        self.pending_cap = cap.max(1);
        self
    }

    /// Restore the committed epoch (snapshot restore: a restarted server
    /// must continue the epoch sequence, not restart it, so estimates
    /// cached against the old process's epochs could never be confused
    /// with fresh ones).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        *self.epoch.get_mut() = epoch;
        self.state.get_mut().epoch = epoch;
        self
    }

    /// The typed error a poisoned lock funnels into — same shape as the
    /// dead-disk errors PR 8 introduced, so one crashed request degrades
    /// this dataset (`ERR dataset ... poisoned`) instead of killing the
    /// worker shard that trips over the lock next.
    fn poisoned_msg(&self, err: LockPoisoned) -> String {
        format!("dataset `{}` unavailable: {err}", self.name)
    }

    /// Worker threads used for catalog growth.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Overlay size at which commits rebase.
    pub fn rebase_threshold(&self) -> usize {
        self.rebase_threshold
    }

    /// Dataset name (the wire-protocol identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Markov hop depth `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Current committed epoch (0 until the first effective commit).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Buffered (uncommitted) edge operations.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Committed edge operations not yet folded into the base CSR.
    pub fn overlay_len(&self) -> usize {
        self.state.read().overlay.len()
    }

    /// `(num_vertices, num_edges)` of the committed graph.
    pub fn graph_summary(&self) -> (usize, usize) {
        let st = self.state.read();
        if st.overlay.is_empty() {
            (st.base.num_vertices(), st.base.num_edges())
        } else {
            let ov = OverlayGraph::new(&st.base, &st.overlay);
            (ceg_graph::GraphView::num_vertices(&ov), ov.num_edges())
        }
    }

    /// Materialize the committed graph as a standalone CSR graph, in
    /// external (wire-visible) numbering. Tests use this to compare a
    /// live server against a cold one loaded with the final graph.
    pub fn materialized_graph(&self) -> LabeledGraph {
        let st = self.state.read();
        self.remap.externalize(&st.base.rebase(&st.overlay))
    }

    /// The dataset's vertex renumbering (external ↔ internal). Exposed
    /// for tests and diagnostics; request paths never need it because
    /// the translation happens inside the entry.
    pub fn remap(&self) -> &VertexRemap {
        &self.remap
    }

    /// Validate one update op against the committed domain plus the
    /// growth allowance ([`MAX_UPDATE_VERTEX`] / [`MAX_UPDATE_LABEL`]):
    /// ids the graph already covers are always legal, growth beyond it
    /// is bounded.
    fn check_update(&self, src: VertexId, dst: VertexId, label: LabelId) -> Result<(), String> {
        let (num_vertices, num_labels) = {
            let st = self
                .state
                .checked_read()
                .map_err(|e| self.poisoned_msg(e))?;
            let base = &st.base;
            (
                base.num_vertices()
                    .max(st.overlay.max_vertex().map_or(0, |v| v as usize + 1)),
                base.num_labels()
                    .max(st.overlay.max_label().map_or(0, |l| l as usize + 1)),
            )
        };
        let vertex_bound = num_vertices.max(MAX_UPDATE_VERTEX as usize + 1);
        if (src as usize) >= vertex_bound || (dst as usize) >= vertex_bound {
            return Err(format!(
                "vertex id out of range (dataset domain is 0..{num_vertices}, \
                 new vertices are limited to {MAX_UPDATE_VERTEX})"
            ));
        }
        let label_bound = num_labels.max(MAX_UPDATE_LABEL as usize + 1);
        if (label as usize) >= label_bound {
            return Err(format!(
                "label out of range (dataset has {num_labels} labels, \
                 new labels are limited to {MAX_UPDATE_LABEL})"
            ));
        }
        Ok(())
    }

    /// Record one bounds-checked op into the pending buffer, enforcing
    /// the pending cap. `src`/`dst` are external (wire) ids; they are
    /// translated to internal numbering here, so everything below this
    /// point — pending, overlay, base — speaks internal ids only.
    fn buffer_update(
        &self,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
        del: bool,
    ) -> Result<(u64, usize), String> {
        self.check_update(src, dst, label)?;
        let (src, dst) = (self.remap.to_internal(src), self.remap.to_internal(dst));
        let mut pending = self
            .pending
            .checked_lock()
            .map_err(|e| self.poisoned_msg(e))?;
        // Replacing an already-buffered op never grows the buffer, so it
        // is allowed even at the cap.
        if pending.len() >= self.pending_cap && pending.edge_override(src, dst, label).is_none() {
            return Err(format!(
                "pending update buffer full ({} ops) — COMMIT before buffering more",
                pending.len()
            ));
        }
        if del {
            pending.del_edge(src, dst, label);
        } else {
            pending.add_edge(src, dst, label);
        }
        Ok((self.epoch(), pending.len()))
    }

    /// Buffer an edge insertion; invisible to estimates until
    /// [`DatasetEntry::commit`]. Returns `(current epoch, pending ops)`,
    /// or an error if the op is out of bounds or the pending buffer is
    /// at its cap.
    pub fn add_edge(
        &self,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    ) -> Result<(u64, usize), String> {
        self.buffer_update(src, dst, label, false)
    }

    /// Buffer an edge deletion; see [`DatasetEntry::add_edge`].
    pub fn del_edge(
        &self,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    ) -> Result<(u64, usize), String> {
        self.buffer_update(src, dst, label, true)
    }

    /// Apply the pending delta: merge it into the committed state, fold
    /// the overlay into a fresh CSR past the rebase threshold,
    /// incrementally recount the touched catalog entries and bump the
    /// epoch. A commit with no effective change (empty pending buffer, or
    /// only no-ops) keeps the epoch — cached estimates stay valid.
    ///
    /// Panics if a WAL append fails; datasets with durability attached
    /// must call [`DatasetEntry::try_commit`] instead.
    pub fn commit(&self) -> CommitOutcome {
        self.try_commit()
            .expect("commit cannot fail without attached durability")
    }

    /// [`DatasetEntry::commit`], durable. With durability attached the
    /// effective delta is appended to the WAL and fsynced **before** it
    /// is applied in memory: after `Ok` the commit survives any crash;
    /// after `Err` nothing was applied and the taken ops are back in the
    /// pending buffer (ahead of anything buffered meanwhile), so the
    /// client sees a failed COMMIT it may retry, never a half-applied
    /// one.
    pub fn try_commit(&self) -> io::Result<CommitOutcome> {
        let mut dur = self
            .durability
            .checked_lock()
            .map_err(|e| io::Error::other(self.poisoned_msg(e)))?;
        if let Some(d) = dur.as_ref() {
            if d.poisoned {
                return Err(io::Error::other(
                    "WAL is poisoned by an earlier unrepaired append failure — \
                     restart the server to recover",
                ));
            }
        }
        let delta = std::mem::take(
            &mut *self
                .pending
                .checked_lock()
                .map_err(|e| io::Error::other(self.poisoned_msg(e)))?,
        );
        let mut st = self
            .state
            .checked_write()
            .map_err(|e| io::Error::other(self.poisoned_msg(e)))?;
        let mut effective = GraphDelta::new();
        for e in delta.adds() {
            if !st.has_edge(e.src, e.dst, e.label) {
                effective.add_edge(e.src, e.dst, e.label);
            }
        }
        for e in delta.dels() {
            if st.has_edge(e.src, e.dst, e.label) {
                effective.del_edge(e.src, e.dst, e.label);
            }
        }
        if effective.is_empty() {
            return Ok(CommitOutcome {
                epoch: st.epoch,
                added: 0,
                deleted: 0,
                recounted: 0,
                rebased: false,
                wal_bytes: 0,
            });
        }
        // Durability barrier: the effective delta, stamped with the
        // epoch it will create, must be on disk before any in-memory
        // state changes. On failure the taken ops are restored to the
        // pending buffer (merged *under* anything buffered since, so
        // later client ops still win) and the in-memory state is
        // untouched.
        //
        // WAL records are written in EXTERNAL numbering: a replay may run
        // under a different remap than the one that appended (snapshot
        // rotation folds commits into the externalized snapshot, and the
        // recovered entry recomputes its permutation from that graph), so
        // only numbering-invariant ids are safe to persist.
        let mut wal_bytes = 0;
        if let Some(d) = dur.as_mut() {
            let wire = effective.map_vertices(|v| self.remap.to_external(v));
            let ops: Vec<WalOp> = wire
                .adds()
                .map(|e| WalOp {
                    src: e.src,
                    dst: e.dst,
                    label: e.label,
                    del: false,
                })
                .chain(wire.dels().map(|e| WalOp {
                    src: e.src,
                    dst: e.dst,
                    label: e.label,
                    del: true,
                }))
                .collect();
            match d.writer.append_tx(st.epoch + 1, &ops) {
                Ok(n) => {
                    wal_bytes = n;
                    d.commits_since_snapshot += 1;
                }
                Err(e) => {
                    if d.writer.repair(&*d.storage).is_err() {
                        d.poisoned = true;
                    }
                    drop(st);
                    // Best effort: a lock poisoned at this point cannot
                    // improve on the append error already being returned.
                    if let Ok(mut pending) = self.pending.checked_lock() {
                        let mut restored = delta;
                        restored.merge(&pending);
                        *pending = restored;
                    }
                    return Err(e);
                }
            }
        }
        let added = effective.adds().count();
        let deleted = effective.dels().count();
        let touched = effective.touched_labels();
        st.overlay.merge(&effective);
        // Keep the overlay normalized against the base so its length
        // measures real divergence (an add later deleted collapses away).
        {
            let base = st.base.clone();
            st.overlay.normalize(&base);
        }
        let rebased = st.overlay.len() >= self.rebase_threshold;
        if rebased {
            st.base = Arc::new(st.base.rebase(&st.overlay));
            st.overlay.clear();
        }
        let recounted = {
            let DatasetState {
                base,
                overlay,
                markov,
                ..
            } = &mut *st;
            if overlay.is_empty() {
                markov.refresh_touched(&**base, &touched, self.jobs)
            } else {
                markov.refresh_touched(&OverlayGraph::new(base, overlay), &touched, self.jobs)
            }
        };
        st.epoch += 1;
        self.epoch.store(st.epoch, Ordering::Release);
        Ok(CommitOutcome {
            epoch: st.epoch,
            added,
            deleted,
            recounted,
            rebased,
            wal_bytes,
        })
    }

    /// Run `f` under a read lock on the catalog (many readers at once).
    pub fn with_markov<R>(&self, f: impl FnOnce(&MarkovTable) -> R) -> R {
        f(&self.state.read().markov)
    }

    /// [`DatasetEntry::with_markov`] for request paths: a poisoned state
    /// lock becomes a typed per-dataset error instead of a panic.
    pub fn try_with_markov<R>(&self, f: impl FnOnce(&MarkovTable) -> R) -> Result<R, String> {
        let st = self
            .state
            .checked_read()
            .map_err(|e| self.poisoned_msg(e))?;
        Ok(f(&st.markov))
    }

    /// Make sure every connected sub-pattern (≤ `h` edges) of `queries` is
    /// in the catalog, counting missing ones exactly once per batch.
    /// Returns how many patterns were added.
    ///
    /// The expensive part — exact counting on the graph — runs without any
    /// lock held, on up to [`DatasetEntry::jobs`] scoped worker threads
    /// ([`ceg_catalog::count_patterns`]): readers keep estimating while a
    /// batch fills gaps. Counting races with commits are resolved by
    /// epoch validation: counts taken against an epoch that changed
    /// before the insert are discarded and recounted, so a stale count
    /// can never enter a newer epoch's catalog.
    pub fn ensure_patterns(&self, queries: &[QueryGraph]) -> usize {
        self.ensure_patterns_deadline(queries, None)
    }

    /// [`DatasetEntry::ensure_patterns`] under an optional wall-clock
    /// deadline: counting stops at the deadline (mid-pattern, via the
    /// kernel's [`ceg_exec::CountBudget`] hook), only *completed* counts
    /// are inserted, and the stale-epoch retry loop gives up once the
    /// deadline has passed. Callers check
    /// [`DatasetEntry::patterns_complete`] afterwards to tell a fully
    /// provisioned query from one whose fill was abandoned.
    pub fn ensure_patterns_deadline(
        &self,
        queries: &[QueryGraph],
        deadline: Option<std::time::Instant>,
    ) -> usize {
        self.ensure_patterns_deadline_stats(queries, deadline).added
    }

    /// [`DatasetEntry::ensure_patterns_deadline`] reporting what the fill
    /// actually did: patterns added, the counting kernel's work
    /// ([`FillStats`]) and whether the counts ran on the overlay view.
    /// This is the catalog-side evidence an `EXPLAIN_ESTIMATE` renders.
    pub fn ensure_patterns_deadline_stats(
        &self,
        queries: &[QueryGraph],
        deadline: Option<std::time::Instant>,
    ) -> EnsureOutcome {
        self.ensure_inner(queries, deadline)
            .unwrap_or_else(|e| e.abort())
    }

    /// [`DatasetEntry::ensure_patterns_deadline_stats`] for request
    /// paths: a poisoned state lock becomes a typed per-dataset error.
    pub fn try_ensure_patterns_deadline_stats(
        &self,
        queries: &[QueryGraph],
        deadline: Option<std::time::Instant>,
    ) -> Result<EnsureOutcome, String> {
        self.ensure_inner(queries, deadline)
            .map_err(|e| self.poisoned_msg(e))
    }

    fn ensure_inner(
        &self,
        queries: &[QueryGraph],
        deadline: Option<std::time::Instant>,
    ) -> Result<EnsureOutcome, LockPoisoned> {
        let mut outcome = EnsureOutcome::default();
        loop {
            let (missing, base, overlay, epoch) = {
                let st = self.state.checked_read()?;
                let mut missing: Vec<Pattern> = Vec::new();
                let mut seen: FxHashSet<Pattern> = FxHashSet::default();
                for q in queries {
                    for mask in q.connected_subsets_up_to(self.h) {
                        let pat = Pattern::of_subquery(q, mask);
                        if st.markov.card(&pat).is_none() && seen.insert(pat.clone()) {
                            missing.push(pat);
                        }
                    }
                }
                if missing.is_empty() {
                    outcome.overlay = !st.overlay.is_empty();
                    return Ok(outcome);
                }
                (missing, st.base.clone(), st.overlay.clone(), st.epoch)
            };
            let budget = match deadline {
                Some(d) => ceg_exec::CountBudget::until(d),
                None => ceg_exec::CountBudget::UNLIMITED,
            };
            outcome.overlay = !overlay.is_empty();
            let (counts, fill) = if overlay.is_empty() {
                count_patterns_budgeted_stats(&*base, &missing, self.jobs, budget)
            } else {
                count_patterns_budgeted_stats(
                    &OverlayGraph::new(&base, &overlay),
                    &missing,
                    self.jobs,
                    budget,
                )
            };
            outcome.fill.absorb(&fill);
            let mut st = self.state.checked_write()?;
            if st.epoch != epoch {
                // A commit landed mid-count: the counts may be stale.
                // Retry — unless the deadline has passed, in which case
                // the caller is about to time the request out anyway.
                if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                    return Ok(outcome);
                }
                continue;
            }
            for (pat, card) in missing.into_iter().zip(counts) {
                // Abandoned counts insert nothing: a partial count must
                // never enter the catalog as if it were exact.
                let Some(card) = card else { continue };
                if st.markov.card(&pat).is_none() {
                    st.markov.insert(pat, card);
                    outcome.added += 1;
                }
            }
            return Ok(outcome);
        }
    }

    /// True when every connected sub-pattern (≤ `h` edges) of `query` is
    /// present in the catalog — i.e. an estimate of `query` needs no
    /// further counting. A deadline-bounded fill that was abandoned
    /// leaves this false for the affected queries.
    pub fn patterns_complete(&self, query: &QueryGraph) -> bool {
        let st = self.state.read();
        query
            .connected_subsets_up_to(self.h)
            .into_iter()
            .all(|mask| st.markov.card(&Pattern::of_subquery(query, mask)).is_some())
    }

    /// Catalog size (stored patterns) right now.
    pub fn catalog_len(&self) -> usize {
        self.state.read().markov.len()
    }

    /// Persist the committed state — graph (overlay folded in), Markov
    /// catalog, epoch — to a binary `.cegsnap` file. Returns `(epoch,
    /// bytes written)`. The state read lock is held only long enough to
    /// clone handles to one consistent committed view (the base is
    /// `Arc`-shared, the overlay and catalog are small); the expensive
    /// encode + write + fsync happen **outside** the lock — holding a
    /// read lock across a disk write would stall every estimate behind
    /// the first commit that queues for the write lock. The pending
    /// update buffer is not captured.
    pub fn write_snapshot(&self, path: impl AsRef<Path>) -> io::Result<(u64, u64)> {
        self.write_snapshot_with(&OsStorage, path.as_ref())
    }

    /// [`DatasetEntry::write_snapshot`] through an explicit
    /// [`Storage`] — the seam rotation and the fault-injection tests
    /// write through.
    pub fn write_snapshot_with(
        &self,
        storage: &dyn Storage,
        path: &Path,
    ) -> io::Result<(u64, u64)> {
        let (base, overlay, markov, epoch) = {
            let st = self.state.read();
            (
                st.base.clone(),
                st.overlay.clone(),
                st.markov.clone(),
                st.epoch,
            )
        };
        // Snapshots persist the EXTERNAL view: the permutation is an
        // in-process layout detail, recomputed deterministically on load,
        // so `.cegsnap` bytes are invariant to it (and round-trip
        // byte-identically through a renumbering server).
        let folded = if overlay.is_empty() {
            self.remap.externalize(&base)
        } else {
            self.remap.externalize(&base.rebase(&overlay))
        };
        ceg_catalog::io::write_snapshot_with(storage, path, &folded, &markov, epoch)?;
        Ok((epoch, storage.len(path)?))
    }

    /// Restore an entry from a `.cegsnap` file written by
    /// [`DatasetEntry::write_snapshot`]: the graph and catalog come back
    /// exactly as persisted and the epoch sequence continues where it
    /// left off. Corrupt or truncated files are errors, never panics.
    pub fn read_snapshot(name: impl Into<String>, path: impl AsRef<Path>) -> io::Result<Self> {
        let snap = ceg_catalog::io::read_snapshot(path)?;
        Ok(DatasetEntry::new(name, snap.graph, snap.markov).with_epoch(snap.epoch))
    }

    /// Make this dataset's commits crash-safe: every effective commit is
    /// appended to the WAL at `wal_path` and fsynced before it is
    /// applied or acked. A baseline snapshot is written to `snap_path`
    /// first if none exists (recovery always has a snapshot to start
    /// from). Errors if durability is already attached, or if the WAL
    /// holds commits beyond this entry's epoch — that log needs
    /// [`DatasetEntry::recover`], not a fresh attach, and attaching
    /// would silently drop acked commits at the next rotation.
    pub fn attach_durability(
        &self,
        storage: Arc<dyn Storage>,
        snap_path: impl Into<PathBuf>,
        wal_path: impl Into<PathBuf>,
    ) -> io::Result<()> {
        let snap_path = snap_path.into();
        let wal_path = wal_path.into();
        let mut dur = self.durability.lock();
        if dur.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "durability already attached",
            ));
        }
        if !storage.exists(&snap_path) {
            self.write_snapshot_with(&*storage, &snap_path)?;
        }
        let (writer, scan) = WalWriter::open(&*storage, &wal_path)?;
        if scan.last_epoch().is_some_and(|e| e > self.epoch()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "WAL at {} holds commits up to epoch {} but the dataset is at epoch {} — \
                     recover from the snapshot + WAL instead of attaching",
                    wal_path.display(),
                    scan.last_epoch().unwrap_or(0),
                    self.epoch(),
                ),
            ));
        }
        *dur = Some(Durability {
            storage,
            snap_path,
            writer,
            commits_since_snapshot: 0,
            poisoned: false,
        });
        Ok(())
    }

    /// Rebuild a dataset exactly as the last acked commit left it: load
    /// the snapshot, replay every WAL transaction with a later epoch
    /// through the normal commit path (so overlay, rebase and catalog
    /// maintenance all re-run deterministically), then attach the WAL
    /// for new appends. A torn tail — the fingerprint of a crash mid
    /// append — is truncated by the scan and reported, never an error:
    /// by the ack protocol those bytes were never acked.
    pub fn recover(
        name: impl Into<String>,
        storage: Arc<dyn Storage>,
        snap_path: impl Into<PathBuf>,
        wal_path: impl Into<PathBuf>,
        jobs: usize,
    ) -> io::Result<(Self, RecoveryReport)> {
        let snap_path = snap_path.into();
        let wal_path = wal_path.into();
        let snap = ceg_catalog::io::read_snapshot_with(&*storage, &snap_path)?;
        let snapshot_epoch = snap.epoch;
        let entry = DatasetEntry::new(name, snap.graph, snap.markov)
            .with_jobs(jobs)
            .with_epoch(snapshot_epoch);
        let (writer, scan) = WalWriter::open(&*storage, &wal_path)?;
        let mut report = RecoveryReport {
            snapshot_epoch,
            replayed_commits: 0,
            replayed_ops: 0,
            epoch: snapshot_epoch,
            torn_tail: scan.diagnosis.clone(),
        };
        for tx in &scan.txs {
            // Epochs at or below the snapshot's were already folded in
            // by the rotation that wrote it; skip them.
            if tx.epoch <= snapshot_epoch {
                continue;
            }
            for op in &tx.ops {
                entry
                    .buffer_update(op.src, op.dst, op.label, op.del)
                    .map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("WAL replay: op rejected: {e}"),
                        )
                    })?;
            }
            let outcome = entry.commit();
            if outcome.epoch != tx.epoch {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL replay diverged: transaction for epoch {} \
                         produced epoch {} — snapshot and log disagree",
                        tx.epoch, outcome.epoch
                    ),
                ));
            }
            report.replayed_commits += 1;
            report.replayed_ops += tx.ops.len();
        }
        report.epoch = entry.epoch();
        *entry.durability.lock() = Some(Durability {
            storage,
            snap_path,
            writer,
            commits_since_snapshot: report.replayed_commits as u64,
            poisoned: false,
        });
        Ok((entry, report))
    }

    /// True once [`DatasetEntry::attach_durability`] /
    /// [`DatasetEntry::recover`] have run.
    pub fn durable(&self) -> bool {
        self.durability.lock().is_some()
    }

    /// Current WAL length in bytes (`None` without durability).
    pub fn wal_len(&self) -> Option<u64> {
        self.durability.lock().as_ref().map(|d| d.writer.len())
    }

    /// Fold the WAL into a fresh snapshot and truncate it, if either
    /// trigger fires: the log reached `rotate_bytes` (0 disables), or
    /// `snapshot_interval_commits` effective commits landed since the
    /// last fold (0 disables). Returns `Ok(None)` when neither fired or
    /// the log is already empty.
    pub fn maybe_rotate(
        &self,
        rotate_bytes: u64,
        snapshot_interval_commits: u64,
    ) -> io::Result<Option<RotateOutcome>> {
        let mut dur = self.durability.lock();
        let Some(d) = dur.as_mut() else {
            return Ok(None);
        };
        let by_bytes = rotate_bytes > 0 && d.writer.len() >= rotate_bytes;
        let by_commits =
            snapshot_interval_commits > 0 && d.commits_since_snapshot >= snapshot_interval_commits;
        if d.writer.is_empty() || (!by_bytes && !by_commits) {
            return Ok(None);
        }
        Self::rotate_locked(self, d).map(Some)
    }

    /// Fold the WAL into a fresh snapshot and truncate it,
    /// unconditionally (no-op without durability or on an empty log).
    pub fn rotate(&self) -> io::Result<Option<RotateOutcome>> {
        let mut dur = self.durability.lock();
        match dur.as_mut() {
            Some(d) if !d.writer.is_empty() => Self::rotate_locked(self, d).map(Some),
            _ => Ok(None),
        }
    }

    /// The fold itself, under the durability lock. Order matters for
    /// crash safety: the snapshot is written **atomically first** (tmp +
    /// rename), the WAL truncated **after**. A crash between the two
    /// leaves a new snapshot plus a log of now-stale transactions —
    /// harmless, because replay skips epochs the snapshot already
    /// covers. The reverse order would lose acked commits.
    fn rotate_locked(&self, d: &mut Durability) -> io::Result<RotateOutcome> {
        let folded = d
            .writer
            .len()
            .saturating_sub(ceg_graph::wal::WAL_HEADER_LEN);
        let (epoch, snapshot_bytes) = self.write_snapshot_with(&*d.storage, &d.snap_path)?;
        d.writer.reset(&*d.storage)?;
        d.commits_since_snapshot = 0;
        Ok(RotateOutcome {
            epoch,
            snapshot_bytes,
            wal_bytes_folded: folded,
        })
    }
}

/// Name → dataset map shared by every connection and worker.
pub struct DatasetRegistry {
    map: OrderedRwLock<FxHashMap<String, Arc<DatasetEntry>>>,
    /// Catalog-growth worker threads handed to entries registered through
    /// [`DatasetRegistry::insert_graph`] / [`DatasetRegistry::load_files`].
    default_jobs: usize,
}

impl DatasetRegistry {
    /// An empty registry whose datasets count missing patterns serially.
    pub fn new() -> Self {
        Self::with_jobs(1)
    }

    /// An empty registry whose datasets grow their catalogs on up to
    /// `jobs` worker threads.
    pub fn with_jobs(jobs: usize) -> Self {
        DatasetRegistry {
            map: OrderedRwLock::new(LockRank::Registry, FxHashMap::default()),
            default_jobs: jobs.max(1),
        }
    }

    /// Catalog-growth worker threads applied to registered datasets.
    pub fn default_jobs(&self) -> usize {
        self.default_jobs
    }

    /// Register a prepared entry, replacing any previous dataset with the
    /// same name. Returns the shared handle.
    pub fn insert(&self, entry: DatasetEntry) -> Arc<DatasetEntry> {
        let entry = Arc::new(entry);
        self.map
            .write()
            .insert(entry.name().to_string(), entry.clone());
        entry
    }

    /// Register a graph with an empty hop-`h` catalog (it fills on demand).
    pub fn insert_graph(
        &self,
        name: impl Into<String>,
        graph: LabeledGraph,
        h: usize,
    ) -> Arc<DatasetEntry> {
        self.insert(
            DatasetEntry::new(name, graph, MarkovTable::empty(h)).with_jobs(self.default_jobs),
        )
    }

    /// Load a dataset from an edge-list file, with an optional persisted
    /// Markov catalog (`cegcli stats` output). Without one, an empty
    /// hop-`h` catalog is built on demand as requests arrive.
    pub fn load_files(
        &self,
        name: impl Into<String>,
        edges_path: impl AsRef<Path>,
        markov_path: Option<&str>,
        h: usize,
    ) -> io::Result<Arc<DatasetEntry>> {
        let graph = load_graph(edges_path)?;
        let markov = match markov_path {
            Some(path) => load_markov(path)?,
            None => MarkovTable::empty(h),
        };
        Ok(self.insert(DatasetEntry::new(name, graph, markov).with_jobs(self.default_jobs)))
    }

    /// Restore a dataset from a `.cegsnap` snapshot file and register it
    /// (see [`DatasetEntry::read_snapshot`]).
    pub fn load_snapshot(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> io::Result<Arc<DatasetEntry>> {
        Ok(self.insert(DatasetEntry::read_snapshot(name, path)?.with_jobs(self.default_jobs)))
    }

    /// Recover a dataset from snapshot + WAL (see
    /// [`DatasetEntry::recover`]), register it with durability attached,
    /// and report what was replayed.
    pub fn recover(
        &self,
        name: impl Into<String>,
        storage: Arc<dyn Storage>,
        snap_path: impl Into<PathBuf>,
        wal_path: impl Into<PathBuf>,
    ) -> io::Result<(Arc<DatasetEntry>, RecoveryReport)> {
        let (entry, report) =
            DatasetEntry::recover(name, storage, snap_path, wal_path, self.default_jobs)?;
        Ok((self.insert(entry), report))
    }

    /// Shared handle to a dataset, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<DatasetEntry>> {
        self.map.read().get(name).cloned()
    }

    /// Registered dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.map.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

impl Default for DatasetRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn toy_graph() -> LabeledGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(3, 4, 0);
        b.build()
    }

    #[test]
    fn ensure_patterns_fills_catalog_once() {
        let registry = DatasetRegistry::new();
        let entry = registry.insert_graph("toy", toy_graph(), 2);
        let q = templates::path(2, &[0, 1]);
        assert_eq!(entry.catalog_len(), 0);
        let added = entry.ensure_patterns(std::slice::from_ref(&q));
        assert!(added > 0);
        let len = entry.catalog_len();
        // Same queries again: nothing to add.
        assert_eq!(entry.ensure_patterns(std::slice::from_ref(&q)), 0);
        assert_eq!(entry.catalog_len(), len);
        // The filled catalog answers the full query pattern.
        let card = entry.with_markov(|t| t.card_of_subquery(&q, q.full_mask()));
        assert_eq!(card, Some(2)); // 0->1->{2,3}
    }

    #[test]
    fn batch_ensure_deduplicates_across_queries() {
        let registry = DatasetRegistry::new();
        let entry = registry.insert_graph("toy", toy_graph(), 2);
        // Two isomorphic queries share all patterns: batch counts them once.
        let q1 = templates::path(2, &[0, 1]);
        let q2 = templates::path(2, &[0, 1]);
        let added = entry.ensure_patterns(&[q1, q2]);
        assert_eq!(added, entry.catalog_len());
    }

    #[test]
    fn parallel_growth_matches_serial_catalog() {
        let serial = DatasetRegistry::new();
        let parallel = DatasetRegistry::with_jobs(4);
        assert_eq!(serial.default_jobs(), 1);
        assert_eq!(parallel.default_jobs(), 4);
        let es = serial.insert_graph("toy", toy_graph(), 2);
        let ep = parallel.insert_graph("toy", toy_graph(), 2);
        assert_eq!(ep.jobs(), 4);
        let queries = [templates::path(2, &[0, 1]), templates::star(2, &[1, 1])];
        assert_eq!(es.ensure_patterns(&queries), ep.ensure_patterns(&queries));
        // Collect from one catalog, then compare against the other:
        // nesting the two read locks would trip the lock-rank checker
        // (two dataset-state locks held at once).
        assert_catalogs_equal(&es, &ep);
    }

    /// Assert two entries hold identical catalogs without ever holding
    /// both state locks at once (same rank: the checker forbids it).
    fn assert_catalogs_equal(a: &DatasetEntry, b: &DatasetEntry) {
        let entries: Vec<(Pattern, u64)> =
            a.with_markov(|t| t.iter().map(|(p, c)| (p.clone(), c)).collect());
        b.with_markov(|t| {
            assert_eq!(t.len(), entries.len());
            for (p, c) in &entries {
                assert_eq!(t.card(p), Some(*c), "pattern {p}");
            }
        });
    }

    #[test]
    fn registry_lookup_and_names() {
        let registry = DatasetRegistry::new();
        assert!(registry.is_empty());
        registry.insert_graph("b", toy_graph(), 2);
        registry.insert_graph("a", toy_graph(), 2);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(registry.get("a").is_some());
        assert!(registry.get("missing").is_none());
    }

    #[test]
    fn updates_are_invisible_until_commit() {
        let registry = DatasetRegistry::new();
        let entry = registry.insert_graph("toy", toy_graph(), 2);
        let q = templates::path(2, &[0, 1]);
        entry.ensure_patterns(std::slice::from_ref(&q));
        let before = entry.with_markov(|t| t.card_of_subquery(&q, q.full_mask()));
        assert_eq!(before, Some(2));

        let (epoch, pending) = entry.add_edge(0, 3, 0).unwrap(); // 0 -0-> 3 -1-> nothing... feeds 3->4? label mismatch
        assert_eq!(epoch, 0);
        assert_eq!(pending, 1);
        // Nothing changed yet.
        assert_eq!(
            entry.with_markov(|t| t.card_of_subquery(&q, q.full_mask())),
            Some(2)
        );
        assert_eq!(entry.epoch(), 0);

        let outcome = entry.commit();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.added, 1);
        assert_eq!(outcome.deleted, 0);
        assert!(outcome.recounted > 0);
        assert_eq!(entry.epoch(), 1);
        assert_eq!(entry.pending_len(), 0);
        // 0->{1,3} under label 0, then label 1 out of 1 (2 ways) and 3 (0).
        assert_eq!(
            entry.with_markov(|t| t.card_of_subquery(&q, q.full_mask())),
            Some(2)
        );
        // A structural change that feeds the path: 4 -1-> 0 extends 3->4.
        entry.add_edge(4, 0, 1).unwrap();
        let outcome = entry.commit();
        assert_eq!(outcome.epoch, 2);
        assert_eq!(
            entry.with_markov(|t| t.card_of_subquery(&q, q.full_mask())),
            Some(3)
        );
    }

    #[test]
    fn pending_buffer_is_capped() {
        let entry =
            DatasetEntry::new("toy", toy_graph(), MarkovTable::empty(2)).with_pending_cap(2);
        entry.add_edge(0, 2, 0).unwrap();
        entry.add_edge(0, 3, 0).unwrap();
        let err = entry.add_edge(0, 4, 0).unwrap_err();
        assert!(err.contains("pending update buffer full"), "{err}");
        // Replacing an already-buffered op does not grow the buffer, so
        // it is allowed even at the cap.
        entry.del_edge(0, 2, 0).unwrap();
        assert_eq!(entry.pending_len(), 2);
        // COMMIT drains the buffer and new updates flow again.
        entry.commit();
        entry.add_edge(0, 4, 0).unwrap();
    }

    #[test]
    fn updates_are_bounds_checked_against_domain_plus_growth() {
        let entry = DatasetEntry::new("toy", toy_graph(), MarkovTable::empty(2));
        // Growth within the allowance is fine even beyond the domain (5).
        entry
            .add_edge(MAX_UPDATE_VERTEX, 0, MAX_UPDATE_LABEL)
            .unwrap();
        // Beyond the allowance (and the 5-vertex domain): refused.
        let err = entry.add_edge(MAX_UPDATE_VERTEX + 1, 0, 0).unwrap_err();
        assert!(err.contains("vertex id out of range"), "{err}");
        let err = entry.del_edge(0, 1, MAX_UPDATE_LABEL + 1).unwrap_err();
        assert!(err.contains("label out of range"), "{err}");
        // The bound is max(domain, allowance): after the commit grows the
        // committed domain, ids inside it stay updatable — a dataset
        // larger than the allowance is never locked out of its own
        // vertices.
        entry.commit();
        assert!(entry.add_edge(MAX_UPDATE_VERTEX, 1, 0).is_ok());
    }

    #[test]
    fn noop_commit_keeps_epoch() {
        let registry = DatasetRegistry::new();
        let entry = registry.insert_graph("toy", toy_graph(), 2);
        assert_eq!(entry.commit().epoch, 0); // empty pending buffer
        entry.add_edge(0, 1, 0).unwrap(); // already present
        entry.del_edge(2, 0, 1).unwrap(); // absent
        let outcome = entry.commit();
        assert_eq!(outcome.epoch, 0);
        assert_eq!((outcome.added, outcome.deleted), (0, 0));
        assert_eq!(entry.epoch(), 0);
    }

    #[test]
    fn add_then_del_in_one_batch_collapses() {
        let registry = DatasetRegistry::new();
        let entry = registry.insert_graph("toy", toy_graph(), 2);
        entry.add_edge(2, 4, 0).unwrap();
        entry.del_edge(2, 4, 0).unwrap();
        let outcome = entry.commit();
        assert_eq!(outcome.epoch, 0, "last-writer-wins: net no-op");
        entry.del_edge(0, 1, 0).unwrap();
        entry.add_edge(0, 1, 0).unwrap();
        assert_eq!(entry.commit().epoch, 0);
    }

    #[test]
    fn snapshot_roundtrips_through_the_registry() {
        use ceg_catalog::io::write_markov;
        let bytes_of = |t: &MarkovTable| {
            let mut buf = Vec::new();
            write_markov(t, &mut buf).unwrap();
            buf
        };
        let path =
            std::env::temp_dir().join(format!("ceg-registry-snap-{}.cegsnap", std::process::id()));
        let registry = DatasetRegistry::with_jobs(2);
        let entry = registry.insert(
            DatasetEntry::new("toy", toy_graph(), MarkovTable::empty(2))
                // Keep a live overlay at snapshot time: the writer must
                // fold it into the persisted graph.
                .with_rebase_threshold(usize::MAX),
        );
        let q = templates::path(2, &[0, 1]);
        entry.ensure_patterns(std::slice::from_ref(&q));
        entry.add_edge(4, 0, 1).unwrap();
        entry.commit();
        assert_eq!(entry.epoch(), 1);
        assert!(entry.overlay_len() > 0);
        // Pending ops must NOT be captured.
        entry.add_edge(2, 2, 0).unwrap();

        let (epoch, bytes) = entry.write_snapshot(&path).unwrap();
        assert_eq!(epoch, 1);
        assert!(bytes > 0);

        let restored = registry.load_snapshot("restored", &path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(restored.epoch(), 1);
        assert_eq!(restored.jobs(), 2);
        assert_eq!(restored.pending_len(), 0);
        assert_eq!(restored.graph_summary(), entry.graph_summary());
        // Catalog byte-identical to the live one (locks taken one at a
        // time: same-rank nesting trips the lock-rank checker).
        let live_bytes = entry.with_markov(|t| bytes_of(t));
        let restored_bytes = restored.with_markov(|t| bytes_of(t));
        assert_eq!(live_bytes, restored_bytes);
        // The epoch sequence continues, it does not restart.
        restored.add_edge(2, 2, 0).unwrap();
        assert_eq!(restored.commit().epoch, 2);
    }

    #[test]
    fn renumbered_dataset_is_invisible_on_the_wire() {
        // The entry renumbers internally (toy_graph's hub 1 gets internal
        // id 0), but every visible surface is in external numbering.
        let entry = DatasetEntry::new("toy", toy_graph(), MarkovTable::empty(2));
        assert!(!entry.remap().is_identity(), "toy graph has a hub");
        assert_eq!(entry.remap().to_internal(1), 0);

        // The materialized graph is the external graph.
        let external = entry.materialized_graph();
        let mut want: Vec<_> = toy_graph().all_edges().collect();
        let mut got: Vec<_> = external.all_edges().collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got);

        // Updates are addressed by external ids: deleting 1 -1-> 2 (which
        // internally is a different pair) must remove exactly that edge.
        entry.del_edge(1, 2, 1).unwrap();
        entry.add_edge(4, 0, 1).unwrap();
        entry.commit();
        let after = entry.materialized_graph();
        assert!(!after.has_edge(1, 2, 1));
        assert!(after.has_edge(4, 0, 1));
        assert!(after.has_edge(1, 3, 1), "untouched edges survive");

        // Snapshot round-trip: bytes written by the live (renumbered)
        // entry restore into an entry that writes the identical bytes,
        // and estimates agree between the live and the cold server.
        let q = templates::path(2, &[0, 1]);
        entry.ensure_patterns(std::slice::from_ref(&q));
        let dir = std::env::temp_dir();
        let p1 = dir.join(format!("ceg-renum-1-{}.cegsnap", std::process::id()));
        let p2 = dir.join(format!("ceg-renum-2-{}.cegsnap", std::process::id()));
        entry.write_snapshot(&p1).unwrap();
        let registry = DatasetRegistry::new();
        let cold = registry.load_snapshot("cold", &p1).unwrap();
        cold.write_snapshot(&p2).unwrap();
        let b1 = std::fs::read(&p1).unwrap();
        let b2 = std::fs::read(&p2).unwrap();
        std::fs::remove_file(&p1).unwrap();
        std::fs::remove_file(&p2).unwrap();
        assert_eq!(b1, b2, "snapshot bytes must round-trip identically");
        assert_eq!(
            entry.with_markov(|t| t.card_of_subquery(&q, q.full_mask())),
            cold.with_markov(|t| t.card_of_subquery(&q, q.full_mask())),
            "live and cold estimates agree"
        );
    }

    #[test]
    fn snapshot_restore_of_corrupt_file_is_an_error() {
        let path =
            std::env::temp_dir().join(format!("ceg-registry-junk-{}.cegsnap", std::process::id()));
        std::fs::write(&path, b"garbage").unwrap();
        let registry = DatasetRegistry::new();
        assert!(registry.load_snapshot("x", &path).is_err());
        std::fs::remove_file(&path).unwrap();
        assert!(registry.get("x").is_none());
    }

    #[test]
    fn overlay_and_rebase_regimes_agree() {
        // Same update stream against a rebase-eager and a rebase-never
        // entry: identical epochs, catalogs and materialized graphs.
        let eager =
            DatasetEntry::new("e", toy_graph(), MarkovTable::empty(2)).with_rebase_threshold(1);
        let lazy = DatasetEntry::new("l", toy_graph(), MarkovTable::empty(2))
            .with_rebase_threshold(usize::MAX);
        let q = templates::path(2, &[0, 1]);
        for entry in [&eager, &lazy] {
            entry.ensure_patterns(std::slice::from_ref(&q));
        }
        for (src, dst, label, add) in [
            (0u32, 3u32, 0u16, true),
            (4, 0, 1, true),
            (1, 2, 1, false),
            (2, 2, 0, true),
        ] {
            for entry in [&eager, &lazy] {
                if add {
                    entry.add_edge(src, dst, label).unwrap();
                } else {
                    entry.del_edge(src, dst, label).unwrap();
                }
                entry.commit();
            }
        }
        assert_eq!(eager.epoch(), lazy.epoch());
        assert_eq!(eager.overlay_len(), 0);
        assert!(lazy.overlay_len() > 0);
        assert_eq!(eager.graph_summary(), lazy.graph_summary());
        assert_catalogs_equal(&eager, &lazy);
        let (ge, gl) = (eager.materialized_graph(), lazy.materialized_graph());
        assert_eq!(ge.num_edges(), gl.num_edges());
        for e in ge.all_edges() {
            assert!(gl.has_edge(e.src, e.dst, e.label), "{e:?}");
        }
    }

    mod durability {
        use super::*;
        use ceg_graph::vfs::{FaultPlan, FaultStorage};

        fn paths() -> (PathBuf, PathBuf) {
            (
                PathBuf::from("/data/toy.cegsnap"),
                PathBuf::from("/data/toy.cegwal"),
            )
        }

        fn durable_entry(fs: &FaultStorage) -> DatasetEntry {
            let (snap, wal) = paths();
            let entry = DatasetEntry::new("toy", toy_graph(), MarkovTable::empty(2));
            entry
                .attach_durability(Arc::new(fs.clone()), snap, wal)
                .unwrap();
            entry
        }

        /// Compare two entries as an estimator would see them: same
        /// epoch, same committed edges, same catalog entries.
        fn assert_same_committed(a: &DatasetEntry, b: &DatasetEntry) {
            assert_eq!(a.epoch(), b.epoch());
            let (ga, gb) = (a.materialized_graph(), b.materialized_graph());
            assert_eq!(ga.num_edges(), gb.num_edges());
            for e in ga.all_edges() {
                assert!(gb.has_edge(e.src, e.dst, e.label), "{e:?}");
            }
            assert_catalogs_equal(a, b);
        }

        #[test]
        fn attach_writes_a_baseline_snapshot_and_an_empty_wal() {
            let fs = FaultStorage::new();
            let entry = durable_entry(&fs);
            let (snap, wal) = paths();
            assert!(entry.durable());
            assert!(fs.exists(&snap));
            assert_eq!(entry.wal_len(), Some(ceg_graph::wal::WAL_HEADER_LEN));
            assert!(fs.exists(&wal));
        }

        #[test]
        fn committed_transactions_recover_exactly() {
            let fs = FaultStorage::new();
            let entry = durable_entry(&fs);
            entry.add_edge(0, 4, 1).unwrap();
            entry.add_edge(2, 3, 0).unwrap();
            let out = entry.try_commit().unwrap();
            assert_eq!(out.epoch, 1);
            assert!(out.wal_bytes > 0);
            entry.del_edge(0, 1, 0).unwrap();
            entry.try_commit().unwrap();

            let (snap, wal) = paths();
            let (recovered, report) =
                DatasetEntry::recover("toy", Arc::new(fs.clone()), snap, wal, 1).unwrap();
            assert_eq!(report.snapshot_epoch, 0);
            assert_eq!(report.replayed_commits, 2);
            assert_eq!(report.replayed_ops, 3);
            assert!(report.torn_tail.is_none());
            assert_same_committed(&entry, &recovered);
        }

        #[test]
        fn noop_commit_appends_nothing() {
            let fs = FaultStorage::new();
            let entry = durable_entry(&fs);
            let before = entry.wal_len().unwrap();
            // Adding an edge the graph already has is effectively empty.
            entry.add_edge(0, 1, 0).unwrap();
            let out = entry.try_commit().unwrap();
            assert_eq!(out.epoch, 0);
            assert_eq!(out.wal_bytes, 0);
            assert_eq!(entry.wal_len().unwrap(), before);
        }

        #[test]
        fn failed_append_restores_pending_and_applies_nothing() {
            let fs = FaultStorage::new();
            let entry = durable_entry(&fs);
            fs.set_plan(FaultPlan::default().fail_at(fs.op_count(), io::ErrorKind::Other));
            entry.add_edge(0, 4, 1).unwrap();
            let err = entry.try_commit().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Other);
            // Nothing applied, nothing acked, op still pending.
            assert_eq!(entry.epoch(), 0);
            assert!(!entry.materialized_graph().has_edge(0, 4, 1));
            assert_eq!(entry.pending_len(), 1);
            // The plan is one-shot: the retry commits the restored op.
            let out = entry.try_commit().unwrap();
            assert_eq!(out.epoch, 1);
            assert!(entry.materialized_graph().has_edge(0, 4, 1));
        }

        #[test]
        fn append_failure_keeps_later_ops_buffered_after_restore() {
            let fs = FaultStorage::new();
            let entry = durable_entry(&fs);
            fs.set_plan(FaultPlan::default().fail_at(fs.op_count(), io::ErrorKind::WriteZero));
            entry.add_edge(0, 4, 1).unwrap();
            entry.try_commit().unwrap_err();
            // An op buffered after the failure must survive the restore
            // and win over the restored delta where they overlap.
            entry.del_edge(0, 4, 1).unwrap();
            let out = entry.try_commit().unwrap();
            assert_eq!(out.epoch, 0, "add then del of an absent edge is a no-op");
            assert!(!entry.materialized_graph().has_edge(0, 4, 1));
        }

        #[test]
        fn crashed_storage_poisons_the_wal_and_refuses_commits() {
            let fs = FaultStorage::new();
            let entry = durable_entry(&fs);
            entry.add_edge(0, 4, 1).unwrap();
            entry.try_commit().unwrap();
            // Storage dies: the append fails AND the repair truncate
            // fails, so the writer can no longer trust its tail.
            fs.set_plan(FaultPlan::default().crash_after(0));
            entry.add_edge(2, 3, 0).unwrap();
            entry.try_commit().unwrap_err();
            entry.add_edge(2, 4, 0).unwrap();
            let err = entry.try_commit().unwrap_err();
            assert!(err.to_string().contains("poisoned"), "{err}");
            // The acked commit is still durable: reboot and recover.
            fs.reboot(0);
            let (snap, wal) = paths();
            let (recovered, report) =
                DatasetEntry::recover("toy", Arc::new(fs.clone()), snap, wal, 1).unwrap();
            assert_eq!(report.replayed_commits, 1);
            assert_eq!(recovered.epoch(), 1);
            assert!(recovered.materialized_graph().has_edge(0, 4, 1));
            assert!(!recovered.materialized_graph().has_edge(2, 3, 0));
        }

        #[test]
        fn rotation_folds_the_log_and_recovery_still_matches() {
            let fs = FaultStorage::new();
            let entry = durable_entry(&fs);
            entry.add_edge(0, 4, 1).unwrap();
            entry.try_commit().unwrap();
            entry.add_edge(2, 3, 0).unwrap();
            entry.try_commit().unwrap();
            let out = entry.rotate().unwrap().expect("log was non-empty");
            assert_eq!(out.epoch, 2);
            assert!(out.wal_bytes_folded > 0);
            assert_eq!(entry.wal_len(), Some(ceg_graph::wal::WAL_HEADER_LEN));
            // Post-rotation commits land in the fresh log.
            entry.del_edge(0, 1, 0).unwrap();
            entry.try_commit().unwrap();
            let (snap, wal) = paths();
            let (recovered, report) =
                DatasetEntry::recover("toy", Arc::new(fs.clone()), snap, wal, 1).unwrap();
            assert_eq!(report.snapshot_epoch, 2);
            assert_eq!(report.replayed_commits, 1);
            assert_same_committed(&entry, &recovered);
        }

        #[test]
        fn maybe_rotate_honors_both_triggers() {
            let fs = FaultStorage::new();
            let entry = durable_entry(&fs);
            assert!(entry.maybe_rotate(1, 1).unwrap().is_none(), "empty log");
            entry.add_edge(0, 4, 1).unwrap();
            entry.try_commit().unwrap();
            assert!(entry.maybe_rotate(0, 0).unwrap().is_none(), "disabled");
            assert!(
                entry.maybe_rotate(1 << 20, 8).unwrap().is_none(),
                "below both"
            );
            assert!(
                entry.maybe_rotate(0, 1).unwrap().is_some(),
                "commit trigger"
            );
            entry.add_edge(2, 3, 0).unwrap();
            entry.try_commit().unwrap();
            assert!(entry.maybe_rotate(1, 0).unwrap().is_some(), "byte trigger");
        }

        #[test]
        fn attach_refuses_a_wal_ahead_of_the_entry() {
            let fs = FaultStorage::new();
            let entry = durable_entry(&fs);
            entry.add_edge(0, 4, 1).unwrap();
            entry.try_commit().unwrap();
            // A fresh entry at epoch 0 must not adopt this epoch-1 log.
            let fresh = DatasetEntry::new("toy", toy_graph(), MarkovTable::empty(2));
            let (snap, wal) = paths();
            let err = fresh
                .attach_durability(Arc::new(fs.clone()), snap, wal)
                .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("recover"), "{err}");
        }

        #[test]
        fn torn_tail_is_reported_and_acked_prefix_recovers() {
            let fs = FaultStorage::new();
            let entry = durable_entry(&fs);
            entry.add_edge(0, 4, 1).unwrap();
            entry.try_commit().unwrap();
            // Crash mid-append of the second commit: half the record's
            // bytes land, unsynced.
            fs.set_plan(FaultPlan::default().crash_after(0));
            entry.add_edge(2, 3, 0).unwrap();
            entry.try_commit().unwrap_err();
            fs.reboot(usize::MAX); // keep every torn byte
            let (snap, wal) = paths();
            let (recovered, report) =
                DatasetEntry::recover("toy", Arc::new(fs.clone()), snap, wal, 1).unwrap();
            assert!(report.torn_tail.is_some());
            assert_eq!(report.replayed_commits, 1);
            assert_eq!(recovered.epoch(), 1);
            assert!(!recovered.materialized_graph().has_edge(2, 3, 0));
            // The torn bytes were truncated: new commits append cleanly.
            recovered.add_edge(2, 3, 0).unwrap();
            assert_eq!(recovered.try_commit().unwrap().epoch, 2);
        }
    }
}
