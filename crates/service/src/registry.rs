//! The dataset registry: load graphs and catalogs once, share forever.
//!
//! `cegcli estimate` pays the full cost of loading the graph and building
//! the Markov catalog on every invocation. The registry is the service's
//! fix: each dataset is loaded once into a [`DatasetEntry`] and shared
//! across requests and worker threads via `Arc`. The graph is immutable
//! after load; the Markov catalog sits behind an `RwLock` and **grows
//! incrementally** — when a batch of requests mentions patterns the
//! catalog has not seen, the missing patterns are counted once (outside
//! any lock) and inserted, so concurrent estimators keep reading while a
//! batch fills gaps.

use std::io;
use std::path::Path;
use std::sync::{Arc, RwLock};

use ceg_catalog::io::load_markov;
use ceg_catalog::{count_patterns, MarkovTable};
use ceg_graph::io::load_graph;
use ceg_graph::{FxHashMap, FxHashSet, LabeledGraph};
use ceg_query::{Pattern, QueryGraph};

/// One registered dataset: the graph plus its shared, growable catalog.
pub struct DatasetEntry {
    name: String,
    graph: LabeledGraph,
    h: usize,
    /// Worker threads used when a batch has to count missing patterns.
    jobs: usize,
    markov: RwLock<MarkovTable>,
}

impl DatasetEntry {
    /// Wrap an already-loaded graph and catalog. Catalog gaps are counted
    /// serially; see [`DatasetEntry::with_jobs`].
    pub fn new(name: impl Into<String>, graph: LabeledGraph, markov: MarkovTable) -> Self {
        DatasetEntry {
            name: name.into(),
            h: markov.h(),
            jobs: 1,
            graph,
            markov: RwLock::new(markov),
        }
    }

    /// Set the number of worker threads used to count missing patterns
    /// when the catalog grows (`cegcli serve --jobs` lands here).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Worker threads used for catalog growth.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Dataset name (the wire-protocol identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared graph.
    pub fn graph(&self) -> &LabeledGraph {
        &self.graph
    }

    /// Markov hop depth `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Run `f` under a read lock on the catalog (many readers at once).
    pub fn with_markov<R>(&self, f: impl FnOnce(&MarkovTable) -> R) -> R {
        f(&self.markov.read().unwrap())
    }

    /// Make sure every connected sub-pattern (≤ `h` edges) of `queries` is
    /// in the catalog, counting missing ones exactly once per batch.
    /// Returns how many patterns were added.
    ///
    /// The expensive part — exact counting on the graph — runs without any
    /// lock held, on up to [`DatasetEntry::jobs`] scoped worker threads
    /// ([`ceg_catalog::count_patterns`]): readers keep estimating while a
    /// batch fills gaps, and two racing batches at worst count the same
    /// pattern twice (the second insert is a no-op on an identical exact
    /// count).
    pub fn ensure_patterns(&self, queries: &[QueryGraph]) -> usize {
        let mut missing: Vec<Pattern> = Vec::new();
        {
            let table = self.markov.read().unwrap();
            let mut seen: FxHashSet<Pattern> = FxHashSet::default();
            for q in queries {
                for mask in q.connected_subsets_up_to(self.h) {
                    let pat = Pattern::of_subquery(q, mask);
                    if table.card(&pat).is_none() && seen.insert(pat.clone()) {
                        missing.push(pat);
                    }
                }
            }
        }
        if missing.is_empty() {
            return 0;
        }
        let counts = count_patterns(&self.graph, &missing, self.jobs);
        let mut table = self.markov.write().unwrap();
        let mut added = 0;
        for (pat, card) in missing.into_iter().zip(counts) {
            if table.card(&pat).is_none() {
                table.insert(pat, card);
                added += 1;
            }
        }
        added
    }

    /// Catalog size (stored patterns) right now.
    pub fn catalog_len(&self) -> usize {
        self.markov.read().unwrap().len()
    }
}

/// Name → dataset map shared by every connection and worker.
pub struct DatasetRegistry {
    map: RwLock<FxHashMap<String, Arc<DatasetEntry>>>,
    /// Catalog-growth worker threads handed to entries registered through
    /// [`DatasetRegistry::insert_graph`] / [`DatasetRegistry::load_files`].
    default_jobs: usize,
}

impl DatasetRegistry {
    /// An empty registry whose datasets count missing patterns serially.
    pub fn new() -> Self {
        Self::with_jobs(1)
    }

    /// An empty registry whose datasets grow their catalogs on up to
    /// `jobs` worker threads.
    pub fn with_jobs(jobs: usize) -> Self {
        DatasetRegistry {
            map: RwLock::new(FxHashMap::default()),
            default_jobs: jobs.max(1),
        }
    }

    /// Catalog-growth worker threads applied to registered datasets.
    pub fn default_jobs(&self) -> usize {
        self.default_jobs
    }

    /// Register a prepared entry, replacing any previous dataset with the
    /// same name. Returns the shared handle.
    pub fn insert(&self, entry: DatasetEntry) -> Arc<DatasetEntry> {
        let entry = Arc::new(entry);
        self.map
            .write()
            .unwrap()
            .insert(entry.name().to_string(), entry.clone());
        entry
    }

    /// Register a graph with an empty hop-`h` catalog (it fills on demand).
    pub fn insert_graph(
        &self,
        name: impl Into<String>,
        graph: LabeledGraph,
        h: usize,
    ) -> Arc<DatasetEntry> {
        self.insert(
            DatasetEntry::new(name, graph, MarkovTable::empty(h)).with_jobs(self.default_jobs),
        )
    }

    /// Load a dataset from an edge-list file, with an optional persisted
    /// Markov catalog (`cegcli stats` output). Without one, an empty
    /// hop-`h` catalog is built on demand as requests arrive.
    pub fn load_files(
        &self,
        name: impl Into<String>,
        edges_path: impl AsRef<Path>,
        markov_path: Option<&str>,
        h: usize,
    ) -> io::Result<Arc<DatasetEntry>> {
        let graph = load_graph(edges_path)?;
        let markov = match markov_path {
            Some(path) => load_markov(path)?,
            None => MarkovTable::empty(h),
        };
        Ok(self.insert(DatasetEntry::new(name, graph, markov).with_jobs(self.default_jobs)))
    }

    /// Shared handle to a dataset, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<DatasetEntry>> {
        self.map.read().unwrap().get(name).cloned()
    }

    /// Registered dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.map.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// True if no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().unwrap().is_empty()
    }
}

impl Default for DatasetRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn toy_graph() -> LabeledGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(3, 4, 0);
        b.build()
    }

    #[test]
    fn ensure_patterns_fills_catalog_once() {
        let registry = DatasetRegistry::new();
        let entry = registry.insert_graph("toy", toy_graph(), 2);
        let q = templates::path(2, &[0, 1]);
        assert_eq!(entry.catalog_len(), 0);
        let added = entry.ensure_patterns(std::slice::from_ref(&q));
        assert!(added > 0);
        let len = entry.catalog_len();
        // Same queries again: nothing to add.
        assert_eq!(entry.ensure_patterns(std::slice::from_ref(&q)), 0);
        assert_eq!(entry.catalog_len(), len);
        // The filled catalog answers the full query pattern.
        let card = entry.with_markov(|t| t.card_of_subquery(&q, q.full_mask()));
        assert_eq!(card, Some(2)); // 0->1->{2,3}
    }

    #[test]
    fn batch_ensure_deduplicates_across_queries() {
        let registry = DatasetRegistry::new();
        let entry = registry.insert_graph("toy", toy_graph(), 2);
        // Two isomorphic queries share all patterns: batch counts them once.
        let q1 = templates::path(2, &[0, 1]);
        let q2 = templates::path(2, &[0, 1]);
        let added = entry.ensure_patterns(&[q1, q2]);
        assert_eq!(added, entry.catalog_len());
    }

    #[test]
    fn parallel_growth_matches_serial_catalog() {
        let serial = DatasetRegistry::new();
        let parallel = DatasetRegistry::with_jobs(4);
        assert_eq!(serial.default_jobs(), 1);
        assert_eq!(parallel.default_jobs(), 4);
        let es = serial.insert_graph("toy", toy_graph(), 2);
        let ep = parallel.insert_graph("toy", toy_graph(), 2);
        assert_eq!(ep.jobs(), 4);
        let queries = [templates::path(2, &[0, 1]), templates::star(2, &[1, 1])];
        assert_eq!(es.ensure_patterns(&queries), ep.ensure_patterns(&queries));
        es.with_markov(|ts| {
            ep.with_markov(|tp| {
                assert_eq!(ts.len(), tp.len());
                for (p, c) in ts.iter() {
                    assert_eq!(tp.card(p), Some(c), "pattern {p}");
                }
            })
        });
    }

    #[test]
    fn registry_lookup_and_names() {
        let registry = DatasetRegistry::new();
        assert!(registry.is_empty());
        registry.insert_graph("b", toy_graph(), 2);
        registry.insert_graph("a", toy_graph(), 2);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(registry.get("a").is_some());
        assert!(registry.get("missing").is_none());
    }
}
