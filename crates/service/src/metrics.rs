//! Lock-free service metrics: latency histograms per wire command, queue
//! depths, and overload counters.
//!
//! Everything here is plain atomics — recording a sample on the request
//! path is a handful of relaxed `fetch_add`s, never a lock — so the
//! metrics layer cannot itself become a contention point under the very
//! overload it is meant to make visible. One [`Metrics`] instance lives
//! on the [`crate::Engine`] and is shared by the TCP server, `cegcli`,
//! the benches and the tests.
//!
//! The [`METRICS` wire command](crate::protocol) dumps
//! [`Metrics::snapshot`] as parseable `<key> <value>` lines; the key
//! reference lives in `docs/ARCHITECTURE.md` ("Overload & lifecycle").

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 microsecond buckets: bucket `i` covers latencies in
/// `[2^(i-1), 2^i)` µs (bucket 0 is `< 1µs`), so bucket 31 tops out
/// above half an hour — far beyond any latency this service can produce.
const BUCKETS: usize = 32;

/// A lock-free log2-bucketed latency histogram (microsecond resolution).
///
/// Quantiles come back as the upper bound of the bucket the quantile
/// falls in — within 2× of the true value, which is exactly the fidelity
/// an overload dashboard needs (is p99 1ms or 1s?), at the cost of one
/// relaxed `fetch_add` per sample.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

fn bucket_of(micros: u64) -> usize {
    ((u64::BITS - micros.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// The upper bound (in µs) of the bucket holding quantile `q` in
    /// `[0, 1]`, or 0 with no samples. Monotone in `q`.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// The wire commands we track latency for, one histogram each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    Estimate,
    EstimateBatch,
    AddEdge,
    DelEdge,
    Commit,
    Snapshot,
    Stats,
    Metrics,
    Ping,
}

impl Command {
    const ALL: [Command; 9] = [
        Command::Estimate,
        Command::EstimateBatch,
        Command::AddEdge,
        Command::DelEdge,
        Command::Commit,
        Command::Snapshot,
        Command::Stats,
        Command::Metrics,
        Command::Ping,
    ];

    /// The snake_case metrics-key fragment for this command.
    pub fn key(self) -> &'static str {
        match self {
            Command::Estimate => "estimate",
            Command::EstimateBatch => "estimate_batch",
            Command::AddEdge => "add_edge",
            Command::DelEdge => "del_edge",
            Command::Commit => "commit",
            Command::Snapshot => "snapshot",
            Command::Stats => "stats",
            Command::Metrics => "metrics",
            Command::Ping => "ping",
        }
    }

    fn index(self) -> usize {
        Command::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every command is in ALL")
    }
}

/// The service-wide metrics registry.
pub struct Metrics {
    /// Wall-clock request latency per command (parse to last reply byte
    /// flushed), recorded by the connection handlers.
    latency: [Histogram; 9],
    /// Time estimate jobs spent queued before a worker picked them up.
    queue_wait: Histogram,
    /// Requests rejected with `BUSY` (admission control or drain).
    busy: AtomicU64,
    /// Requests answered with `TIMEOUT` (deadline exceeded).
    timeouts: AtomicU64,
    /// Requests answered with `ERR`.
    errors: AtomicU64,
    /// Estimate jobs currently queued (admitted, not yet finished by a
    /// worker).
    queued: AtomicU64,
    /// High-water mark of `queued`.
    queued_peak: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            latency: Default::default(),
            queue_wait: Histogram::new(),
            busy: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            queued_peak: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latency histogram of one command.
    pub fn latency(&self, cmd: Command) -> &Histogram {
        &self.latency[cmd.index()]
    }

    /// Record one request's wall-clock latency.
    pub fn record_latency(&self, cmd: Command, latency: Duration) {
        self.latency(cmd).record(latency);
    }

    /// The queue-wait histogram (enqueue to worker dequeue).
    pub fn queue_wait(&self) -> &Histogram {
        &self.queue_wait
    }

    /// Count one `BUSY` rejection.
    pub fn record_busy(&self) {
        self.busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `TIMEOUT` reply.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `ERR` reply.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// One estimate job was admitted to a queue.
    pub fn job_enqueued(&self) {
        let now = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        self.queued_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// One admitted job finished (answered, BUSY-rejected at dequeue, or
    /// dropped with its permit).
    pub fn job_finished(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
    }

    /// `BUSY` rejections so far.
    pub fn busy(&self) -> u64 {
        self.busy.load(Ordering::Relaxed)
    }

    /// `TIMEOUT` replies so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// `ERR` replies so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Estimate jobs currently queued.
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// High-water mark of the queue gauge.
    pub fn queued_peak(&self) -> u64 {
        self.queued_peak.load(Ordering::Relaxed)
    }

    /// Dump every counter as sorted-stable `(key, value)` pairs — the
    /// payload of the `METRICS` wire reply. Keys are snake_case and
    /// stable across releases; values are plain integers (latencies in
    /// microseconds).
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = vec![
            ("busy_total".into(), self.busy()),
            ("timeout_total".into(), self.timeouts()),
            ("error_total".into(), self.errors()),
            ("queued".into(), self.queued()),
            ("queued_peak".into(), self.queued_peak()),
            ("queue_wait_count".into(), self.queue_wait.count()),
            ("queue_wait_sum_us".into(), self.queue_wait.sum_micros()),
            (
                "queue_wait_p50_us".into(),
                self.queue_wait.quantile_micros(0.50),
            ),
            (
                "queue_wait_p99_us".into(),
                self.queue_wait.quantile_micros(0.99),
            ),
        ];
        for cmd in Command::ALL {
            let h = self.latency(cmd);
            let k = cmd.key();
            out.push((format!("latency_{k}_count"), h.count()));
            out.push((format!("latency_{k}_sum_us"), h.sum_micros()));
            out.push((format!("latency_{k}_p50_us"), h.quantile_micros(0.50)));
            out.push((format!("latency_{k}_p99_us"), h.quantile_micros(0.99)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2_micros() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_recorded_samples() {
        let h = Histogram::new();
        assert_eq!(h.quantile_micros(0.99), 0);
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(100));
        assert_eq!(h.count(), 100);
        // p50 lands in the 100µs bucket: upper bound within 2× above.
        let p50 = h.quantile_micros(0.50);
        assert!((100..=256).contains(&p50), "p50={p50}");
        // p100 must see the 100ms straggler.
        let p100 = h.quantile_micros(1.0);
        assert!(p100 >= 100_000, "p100={p100}");
        // Monotone in q.
        assert!(h.quantile_micros(0.5) <= h.quantile_micros(0.99));
        assert!(h.quantile_micros(0.99) <= h.quantile_micros(1.0));
    }

    #[test]
    fn queue_gauge_tracks_peak() {
        let m = Metrics::new();
        m.job_enqueued();
        m.job_enqueued();
        m.job_finished();
        m.job_enqueued();
        assert_eq!(m.queued(), 2);
        assert_eq!(m.queued_peak(), 2);
        m.job_finished();
        m.job_finished();
        assert_eq!(m.queued(), 0);
        assert_eq!(m.queued_peak(), 2);
    }

    #[test]
    fn snapshot_has_stable_parseable_keys() {
        let m = Metrics::new();
        m.record_busy();
        m.record_timeout();
        m.record_latency(Command::Estimate, Duration::from_micros(50));
        let snap = m.snapshot();
        let get = |k: &str| {
            snap.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing key {k}"))
        };
        assert_eq!(get("busy_total"), 1);
        assert_eq!(get("timeout_total"), 1);
        assert_eq!(get("latency_estimate_count"), 1);
        assert_eq!(get("latency_ping_count"), 0);
        // Keys are unique.
        let mut keys: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), snap.len());
    }
}
