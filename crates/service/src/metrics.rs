//! Lock-free service metrics: latency histograms per wire command, queue
//! depths, and overload counters.
//!
//! Everything here is plain atomics — recording a sample on the request
//! path is a handful of relaxed `fetch_add`s, never a lock — so the
//! metrics layer cannot itself become a contention point under the very
//! overload it is meant to make visible. One [`Metrics`] instance lives
//! on the [`crate::Engine`] and is shared by the TCP server, `cegcli`,
//! the benches and the tests.
//!
//! The [`METRICS` wire command](crate::protocol) dumps
//! [`Metrics::snapshot`] as parseable `<key> <value>` lines; the key
//! reference lives in `docs/ARCHITECTURE.md` ("Overload & lifecycle").

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 microsecond buckets: bucket `i` covers latencies in
/// `[2^(i-1), 2^i)` µs (bucket 0 is `< 1µs`), so bucket 31 tops out
/// above half an hour — far beyond any latency this service can produce.
const BUCKETS: usize = 32;

/// A lock-free log2-bucketed latency histogram (microsecond resolution).
///
/// Quantiles come back as the upper bound of the bucket the quantile
/// falls in — within 2× of the true value, which is exactly the fidelity
/// an overload dashboard needs (is p99 1ms or 1s?), at the cost of one
/// relaxed `fetch_add` per sample.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

fn bucket_of(micros: u64) -> usize {
    ((u64::BITS - micros.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// The upper bound (in µs) of the bucket holding quantile `q` in
    /// `[0, 1]`. Monotone in `q`.
    ///
    /// Edge cases are pinned: an **empty histogram returns 0** (there is
    /// no bucket to name), and under concurrent recording the rank is
    /// computed from the *same* one-pass bucket snapshot it is then
    /// resolved against — never from the separate `count` atomic, which
    /// can disagree with the buckets mid-`record` (a torn read that
    /// previously walked past every bucket and answered the bogus top
    /// bucket).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        // Unreachable: rank <= total == the sum of the scanned counts.
        1u64 << (BUCKETS - 1)
    }

    /// One relaxed load per bucket, in bucket order — the raw counts
    /// behind [`Histogram::quantile_micros`] and the Prometheus
    /// `_bucket` series.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut counts = [0u64; BUCKETS];
        for (c, b) in counts.iter_mut().zip(&self.buckets) {
            *c = b.load(Ordering::Relaxed);
        }
        counts
    }

    /// Render this histogram as a Prometheus text-exposition family:
    /// `# TYPE` line, cumulative `_bucket{le="..."}` series (bucket `i`
    /// has upper bound `2^i` µs; the top bucket is `+Inf`), `_sum` and
    /// `_count`. `_count` is derived from the same bucket snapshot as
    /// the series, so the cumulative counts are monotone and consistent
    /// even under concurrent recording.
    pub fn prom_into(&self, family: &str, out: &mut Vec<String>) {
        let counts = self.bucket_counts();
        out.push(format!("# TYPE {family} histogram"));
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            if i == BUCKETS - 1 {
                out.push(format!("{family}_bucket{{le=\"+Inf\"}} {cum}"));
            } else {
                out.push(format!("{family}_bucket{{le=\"{}\"}} {cum}", 1u64 << i));
            }
        }
        out.push(format!("{family}_sum {}", self.sum_micros()));
        out.push(format!("{family}_count {cum}"));
    }
}

/// The wire commands we track latency for, one histogram each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    Estimate,
    EstimateBatch,
    ExplainEstimate,
    AddEdge,
    DelEdge,
    Commit,
    Snapshot,
    Stats,
    Metrics,
    MetricsProm,
    SlowLog,
    Ping,
}

/// Number of tracked commands (the latency-histogram array size).
const COMMANDS: usize = 12;

impl Command {
    const ALL: [Command; COMMANDS] = [
        Command::Estimate,
        Command::EstimateBatch,
        Command::ExplainEstimate,
        Command::AddEdge,
        Command::DelEdge,
        Command::Commit,
        Command::Snapshot,
        Command::Stats,
        Command::Metrics,
        Command::MetricsProm,
        Command::SlowLog,
        Command::Ping,
    ];

    /// The snake_case metrics-key fragment for this command.
    pub fn key(self) -> &'static str {
        match self {
            Command::Estimate => "estimate",
            Command::EstimateBatch => "estimate_batch",
            Command::ExplainEstimate => "explain_estimate",
            Command::AddEdge => "add_edge",
            Command::DelEdge => "del_edge",
            Command::Commit => "commit",
            Command::Snapshot => "snapshot",
            Command::Stats => "stats",
            Command::Metrics => "metrics",
            Command::MetricsProm => "metrics_prom",
            Command::SlowLog => "slowlog",
            Command::Ping => "ping",
        }
    }

    fn index(self) -> usize {
        Command::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every command is in ALL")
    }
}

/// The service-wide metrics registry.
pub struct Metrics {
    /// Wall-clock request latency per command (parse to last reply byte
    /// flushed), recorded by the connection handlers.
    latency: [Histogram; COMMANDS],
    /// Time estimate jobs spent queued before a worker picked them up.
    queue_wait: Histogram,
    /// Requests rejected with `BUSY` (admission control or drain).
    busy: AtomicU64,
    /// Requests answered with `TIMEOUT` (deadline exceeded).
    timeouts: AtomicU64,
    /// Requests answered with `ERR`.
    errors: AtomicU64,
    /// Estimate jobs currently queued (admitted, not yet finished by a
    /// worker).
    queued: AtomicU64,
    /// High-water mark of `queued`.
    queued_peak: AtomicU64,
    /// Estimates clamped because an estimator produced `NaN`/`inf` on a
    /// degenerate catalog (answered `none` instead of garbage).
    degenerate: AtomicU64,
    /// Counting-kernel totals, aggregated over every catalog fill.
    kernel_candidates: AtomicU64,
    kernel_merge: AtomicU64,
    kernel_gallop: AtomicU64,
    kernel_bitset: AtomicU64,
    kernel_suffix: AtomicU64,
    kernel_memo_hits: AtomicU64,
    kernel_budget: AtomicU64,
    /// Durable commits appended (and fsynced) to a WAL.
    wal_commits: AtomicU64,
    /// WAL bytes appended across those commits.
    wal_bytes: AtomicU64,
    /// WAL-append failures (the commit was refused, nothing applied).
    wal_errors: AtomicU64,
    /// Log rotations: WAL folded into a snapshot and truncated.
    wal_rotations: AtomicU64,
    /// Committed transactions replayed from WAL tails at boot.
    wal_recovered_commits: AtomicU64,
    /// Recoveries that found (and truncated) a torn WAL tail.
    wal_torn_tails: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            latency: Default::default(),
            queue_wait: Histogram::new(),
            busy: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            queued_peak: AtomicU64::new(0),
            degenerate: AtomicU64::new(0),
            kernel_candidates: AtomicU64::new(0),
            kernel_merge: AtomicU64::new(0),
            kernel_gallop: AtomicU64::new(0),
            kernel_bitset: AtomicU64::new(0),
            kernel_suffix: AtomicU64::new(0),
            kernel_memo_hits: AtomicU64::new(0),
            kernel_budget: AtomicU64::new(0),
            wal_commits: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            wal_errors: AtomicU64::new(0),
            wal_rotations: AtomicU64::new(0),
            wal_recovered_commits: AtomicU64::new(0),
            wal_torn_tails: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latency histogram of one command.
    pub fn latency(&self, cmd: Command) -> &Histogram {
        &self.latency[cmd.index()]
    }

    /// Record one request's wall-clock latency.
    pub fn record_latency(&self, cmd: Command, latency: Duration) {
        self.latency(cmd).record(latency);
    }

    /// The queue-wait histogram (enqueue to worker dequeue).
    pub fn queue_wait(&self) -> &Histogram {
        &self.queue_wait
    }

    /// Count one `BUSY` rejection.
    pub fn record_busy(&self) {
        self.busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `TIMEOUT` reply.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `ERR` reply.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// One estimate job was admitted to a queue.
    pub fn job_enqueued(&self) {
        let now = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        self.queued_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// One admitted job finished (answered, BUSY-rejected at dequeue, or
    /// dropped with its permit).
    pub fn job_finished(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
    }

    /// Count one degenerate (`NaN`/`inf`) estimate clamped to `none`.
    pub fn record_estimator_degenerate(&self) {
        self.degenerate.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one counting run's [`ceg_exec::KernelStats`] into the global
    /// kernel totals (a handful of relaxed `fetch_add`s per catalog
    /// fill, not per candidate).
    pub fn record_kernel(&self, stats: &ceg_exec::KernelStats) {
        self.kernel_candidates
            .fetch_add(stats.candidates, Ordering::Relaxed);
        self.kernel_merge
            .fetch_add(stats.merge_intersections, Ordering::Relaxed);
        self.kernel_gallop
            .fetch_add(stats.gallop_intersections, Ordering::Relaxed);
        self.kernel_bitset
            .fetch_add(stats.bitset_intersections, Ordering::Relaxed);
        self.kernel_suffix
            .fetch_add(stats.suffix_shortcuts, Ordering::Relaxed);
        self.kernel_memo_hits
            .fetch_add(stats.memo_hits, Ordering::Relaxed);
        self.kernel_budget
            .fetch_add(stats.budget_consumed, Ordering::Relaxed);
    }

    /// Count one durable commit: `wal_bytes` appended + fsynced before
    /// the ack.
    pub fn record_wal_commit(&self, wal_bytes: u64) {
        self.wal_commits.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(wal_bytes, Ordering::Relaxed);
    }

    /// Count one refused commit (WAL append failed; nothing applied).
    pub fn record_wal_error(&self) {
        self.wal_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one WAL rotation (log folded into a snapshot).
    pub fn record_wal_rotation(&self) {
        self.wal_rotations.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one boot-time recovery into the totals: `commits` replayed,
    /// plus whether a torn tail was found and truncated.
    pub fn record_wal_recovery(&self, commits: u64, torn_tail: bool) {
        self.wal_recovered_commits
            .fetch_add(commits, Ordering::Relaxed);
        if torn_tail {
            self.wal_torn_tails.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Durable commits so far.
    pub fn wal_commits(&self) -> u64 {
        self.wal_commits.load(Ordering::Relaxed)
    }

    /// Degenerate estimates clamped so far.
    pub fn estimator_degenerate(&self) -> u64 {
        self.degenerate.load(Ordering::Relaxed)
    }

    /// `BUSY` rejections so far.
    pub fn busy(&self) -> u64 {
        self.busy.load(Ordering::Relaxed)
    }

    /// `TIMEOUT` replies so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// `ERR` replies so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Estimate jobs currently queued.
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// High-water mark of the queue gauge.
    pub fn queued_peak(&self) -> u64 {
        self.queued_peak.load(Ordering::Relaxed)
    }

    /// Dump every counter as sorted-stable `(key, value)` pairs — the
    /// payload of the `METRICS` wire reply. Keys are snake_case and
    /// stable across releases; values are plain integers (latencies in
    /// microseconds).
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = vec![
            ("busy_total".into(), self.busy()),
            ("timeout_total".into(), self.timeouts()),
            ("error_total".into(), self.errors()),
            (
                "estimator_degenerate_total".into(),
                self.estimator_degenerate(),
            ),
            ("queued".into(), self.queued()),
            ("queued_peak".into(), self.queued_peak()),
            (
                "kernel_candidates_total".into(),
                self.kernel_candidates.load(Ordering::Relaxed),
            ),
            (
                "kernel_intersect_merge_total".into(),
                self.kernel_merge.load(Ordering::Relaxed),
            ),
            (
                "kernel_intersect_gallop_total".into(),
                self.kernel_gallop.load(Ordering::Relaxed),
            ),
            (
                "kernel_intersect_bitset_total".into(),
                self.kernel_bitset.load(Ordering::Relaxed),
            ),
            (
                "kernel_suffix_shortcuts_total".into(),
                self.kernel_suffix.load(Ordering::Relaxed),
            ),
            (
                "kernel_memo_hits_total".into(),
                self.kernel_memo_hits.load(Ordering::Relaxed),
            ),
            (
                "kernel_budget_consumed_total".into(),
                self.kernel_budget.load(Ordering::Relaxed),
            ),
            (
                "wal_commits_total".into(),
                self.wal_commits.load(Ordering::Relaxed),
            ),
            (
                "wal_bytes_total".into(),
                self.wal_bytes.load(Ordering::Relaxed),
            ),
            (
                "wal_errors_total".into(),
                self.wal_errors.load(Ordering::Relaxed),
            ),
            (
                "wal_rotations_total".into(),
                self.wal_rotations.load(Ordering::Relaxed),
            ),
            (
                "wal_recovered_commits_total".into(),
                self.wal_recovered_commits.load(Ordering::Relaxed),
            ),
            (
                "wal_torn_tails_total".into(),
                self.wal_torn_tails.load(Ordering::Relaxed),
            ),
            ("queue_wait_count".into(), self.queue_wait.count()),
            ("queue_wait_sum_us".into(), self.queue_wait.sum_micros()),
            (
                "queue_wait_p50_us".into(),
                self.queue_wait.quantile_micros(0.50),
            ),
            (
                "queue_wait_p99_us".into(),
                self.queue_wait.quantile_micros(0.99),
            ),
        ];
        for cmd in Command::ALL {
            let h = self.latency(cmd);
            let k = cmd.key();
            out.push((format!("latency_{k}_count"), h.count()));
            out.push((format!("latency_{k}_sum_us"), h.sum_micros()));
            out.push((format!("latency_{k}_p50_us"), h.quantile_micros(0.50)));
            out.push((format!("latency_{k}_p99_us"), h.quantile_micros(0.99)));
        }
        out
    }

    /// Render the metrics-owned families in Prometheus text exposition
    /// format: one `counter`/`gauge` family per scalar, one `histogram`
    /// family per latency histogram. The engine appends its own families
    /// (cache, datasets) for the full `METRICS_PROM` payload.
    pub fn prom_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        let counter = |out: &mut Vec<String>, name: &str, v: u64| {
            out.push(format!("# TYPE {name} counter"));
            out.push(format!("{name} {v}"));
        };
        let gauge = |out: &mut Vec<String>, name: &str, v: u64| {
            out.push(format!("# TYPE {name} gauge"));
            out.push(format!("{name} {v}"));
        };
        counter(&mut out, "ceg_busy_total", self.busy());
        counter(&mut out, "ceg_timeout_total", self.timeouts());
        counter(&mut out, "ceg_error_total", self.errors());
        counter(
            &mut out,
            "ceg_estimator_degenerate_total",
            self.estimator_degenerate(),
        );
        counter(
            &mut out,
            "ceg_kernel_candidates_total",
            self.kernel_candidates.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "ceg_kernel_intersect_merge_total",
            self.kernel_merge.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "ceg_kernel_intersect_gallop_total",
            self.kernel_gallop.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "ceg_kernel_intersect_bitset_total",
            self.kernel_bitset.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "ceg_kernel_suffix_shortcuts_total",
            self.kernel_suffix.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "ceg_kernel_memo_hits_total",
            self.kernel_memo_hits.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "ceg_kernel_budget_consumed_total",
            self.kernel_budget.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "ceg_wal_commits_total",
            self.wal_commits.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "ceg_wal_bytes_total",
            self.wal_bytes.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "ceg_wal_errors_total",
            self.wal_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "ceg_wal_rotations_total",
            self.wal_rotations.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "ceg_wal_recovered_commits_total",
            self.wal_recovered_commits.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "ceg_wal_torn_tails_total",
            self.wal_torn_tails.load(Ordering::Relaxed),
        );
        gauge(&mut out, "ceg_queued", self.queued());
        gauge(&mut out, "ceg_queued_peak", self.queued_peak());
        self.queue_wait.prom_into("ceg_queue_wait_micros", &mut out);
        for cmd in Command::ALL {
            self.latency(cmd)
                .prom_into(&format!("ceg_latency_{}_micros", cmd.key()), &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2_micros() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_recorded_samples() {
        let h = Histogram::new();
        assert_eq!(h.quantile_micros(0.99), 0);
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(100));
        assert_eq!(h.count(), 100);
        // p50 lands in the 100µs bucket: upper bound within 2× above.
        let p50 = h.quantile_micros(0.50);
        assert!((100..=256).contains(&p50), "p50={p50}");
        // p100 must see the 100ms straggler.
        let p100 = h.quantile_micros(1.0);
        assert!(p100 >= 100_000, "p100={p100}");
        // Monotone in q.
        assert!(h.quantile_micros(0.5) <= h.quantile_micros(0.99));
        assert!(h.quantile_micros(0.99) <= h.quantile_micros(1.0));
    }

    #[test]
    fn empty_histogram_quantile_is_zero_at_every_q() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0, -3.0, 7.0] {
            assert_eq!(h.quantile_micros(q), 0, "q={q}");
        }
    }

    #[test]
    fn torn_count_vs_bucket_reads_stay_in_range() {
        // Simulate the torn read: the bucket stores and the `count`
        // store in `record` are separate relaxed atomics, so a reader
        // can observe `count` ahead of the buckets. Force the worst
        // case by recording via the public API and then bumping `count`
        // behind the histogram's back.
        let h = Histogram::new();
        h.record(Duration::from_micros(100));
        h.count.fetch_add(1_000, Ordering::Relaxed);
        // The quantile must resolve against the bucket snapshot — the
        // single real sample's bucket — never fall through to the bogus
        // `2^31` top bucket.
        for q in [0.5, 0.99, 1.0] {
            let v = h.quantile_micros(q);
            assert_eq!(v, 128, "q={q}: rank must clamp to the bucket sum");
        }
    }

    #[test]
    fn histogram_prom_rendering_is_cumulative_and_consistent() {
        let h = Histogram::new();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(100));
        h.record(Duration::from_millis(5));
        let mut lines = Vec::new();
        h.prom_into("ceg_test_micros", &mut lines);
        assert_eq!(lines[0], "# TYPE ceg_test_micros histogram");
        let buckets: Vec<u64> = lines
            .iter()
            .filter(|l| l.starts_with("ceg_test_micros_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(buckets.len(), 32);
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "monotone");
        assert_eq!(*buckets.last().unwrap(), 3);
        assert!(lines.iter().any(|l| l == "ceg_test_micros_count 3"));
        assert!(lines.iter().any(|l| l.contains("_bucket{le=\"+Inf\"} 3")));
    }

    #[test]
    fn queue_gauge_tracks_peak() {
        let m = Metrics::new();
        m.job_enqueued();
        m.job_enqueued();
        m.job_finished();
        m.job_enqueued();
        assert_eq!(m.queued(), 2);
        assert_eq!(m.queued_peak(), 2);
        m.job_finished();
        m.job_finished();
        assert_eq!(m.queued(), 0);
        assert_eq!(m.queued_peak(), 2);
    }

    #[test]
    fn wal_counters_surface_in_snapshot_and_prom() {
        let m = Metrics::new();
        m.record_wal_commit(128);
        m.record_wal_commit(64);
        m.record_wal_error();
        m.record_wal_rotation();
        m.record_wal_recovery(3, true);
        m.record_wal_recovery(2, false);
        let snap = m.snapshot();
        let get = |k: &str| {
            snap.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing key {k}"))
        };
        assert_eq!(get("wal_commits_total"), 2);
        assert_eq!(get("wal_bytes_total"), 192);
        assert_eq!(get("wal_errors_total"), 1);
        assert_eq!(get("wal_rotations_total"), 1);
        assert_eq!(get("wal_recovered_commits_total"), 5);
        assert_eq!(get("wal_torn_tails_total"), 1);
        let prom = m.prom_lines();
        assert!(prom.iter().any(|l| l == "ceg_wal_commits_total 2"));
        assert!(prom.iter().any(|l| l == "ceg_wal_bytes_total 192"));
        assert!(prom.iter().any(|l| l == "ceg_wal_torn_tails_total 1"));
    }

    #[test]
    fn snapshot_has_stable_parseable_keys() {
        let m = Metrics::new();
        m.record_busy();
        m.record_timeout();
        m.record_latency(Command::Estimate, Duration::from_micros(50));
        let snap = m.snapshot();
        let get = |k: &str| {
            snap.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing key {k}"))
        };
        assert_eq!(get("busy_total"), 1);
        assert_eq!(get("timeout_total"), 1);
        assert_eq!(get("latency_estimate_count"), 1);
        assert_eq!(get("latency_ping_count"), 0);
        // Keys are unique.
        let mut keys: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), snap.len());
    }
}
