//! A small blocking client for the wire protocol.
//!
//! Used by `cegcli query`, the integration tests and the CI smoke script;
//! anything that can write lines to a TCP socket (netcat included) speaks
//! the same protocol.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ceg_graph::{LabelId, VertexId};
use ceg_query::QueryGraph;

use crate::engine::{EngineStats, SnapshotAck, UpdateAck};
use crate::protocol::{parse_batch_response_header, Request, Response};
use crate::registry::CommitOutcome;

/// The answer to one `ESTIMATE` request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateReply {
    /// The estimate; `None` when the estimator cannot answer.
    pub value: Option<f64>,
    /// True if the server answered from its LRU cache.
    pub cached: bool,
    /// Server-wide cache hits after this request.
    pub hits: u64,
    /// Server-wide cache misses after this request.
    pub misses: u64,
}

/// One connection to a running estimation server.
pub struct Client {
    reader: BufReader<TcpStream>,
    /// Buffered so each request leaves in one write syscall — an
    /// unbuffered `writeln!` issues several small writes, which Nagle +
    /// delayed ACKs stretch into ~40ms per round-trip.
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            writer: BufWriter::new(stream.try_clone()?),
            reader: BufReader::new(stream),
        })
    }

    fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        writeln!(self.writer, "{}", request.format())?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::parse(line.trim_end())
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }

    fn protocol_error(response: Response) -> io::Error {
        let msg = match response {
            Response::Error(msg) => msg,
            other => format!("unexpected response `{}`", other.format()),
        };
        io::Error::other(msg)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Estimate `query` against the named dataset.
    pub fn estimate(&mut self, dataset: &str, query: &QueryGraph) -> io::Result<EstimateReply> {
        let request = Request::Estimate {
            dataset: dataset.to_string(),
            query: query.clone(),
        };
        match self.roundtrip(&request)? {
            Response::Estimate {
                outcome,
                hits,
                misses,
            } => Ok(EstimateReply {
                value: outcome.value,
                cached: outcome.cached,
                hits,
                misses,
            }),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Estimate an ordered batch of queries against one dataset in one
    /// wire round-trip per [`crate::protocol::MAX_BATCH_QUERIES`]-sized
    /// chunk (`ESTIMATE_BATCH`): the server fans each chunk across its
    /// worker pool and streams the answers back in request order.
    /// Replies line up index-for-index with `queries`. An empty batch
    /// is answered locally without touching the wire.
    pub fn estimate_batch(
        &mut self,
        dataset: &str,
        queries: &[QueryGraph],
    ) -> io::Result<Vec<EstimateReply>> {
        // Chunk transparently: sending a header past the server's batch
        // cap is an unrecoverable framing error that would drop the
        // connection, so an oversized workload must never reach the wire
        // as one batch.
        if queries.len() > crate::protocol::MAX_BATCH_QUERIES {
            let mut replies = Vec::with_capacity(queries.len());
            for chunk in queries.chunks(crate::protocol::MAX_BATCH_QUERIES) {
                replies.extend(self.estimate_batch(dataset, chunk)?);
            }
            return Ok(replies);
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let request = Request::EstimateBatch {
            dataset: dataset.to_string(),
            queries: queries.to_vec(),
        };
        writeln!(self.writer, "{}", request.format())?;
        self.writer.flush()?;
        let mut line = String::new();
        let mut next_line = |reader: &mut BufReader<TcpStream>| -> io::Result<String> {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-batch",
                ));
            }
            Ok(line.trim_end().to_string())
        };
        let header = next_line(&mut self.reader)?;
        if let Some(msg) = header.strip_prefix("ERR") {
            return Err(io::Error::other(msg.trim().to_string()));
        }
        let n = parse_batch_response_header(&header)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?;
        if n != queries.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("batch of {} answered with {n} replies", queries.len()),
            ));
        }
        // Always consume all n announced lines — returning early on a
        // per-query error would leave the rest in the stream and desync
        // every later request on this connection.
        let mut replies = Vec::with_capacity(n);
        let mut first_error: Option<io::Error> = None;
        for _ in 0..n {
            let text = next_line(&mut self.reader)?;
            match Response::parse(&text)
                .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?
            {
                Response::Estimate {
                    outcome,
                    hits,
                    misses,
                } => replies.push(EstimateReply {
                    value: outcome.value,
                    cached: outcome.cached,
                    hits,
                    misses,
                }),
                other => {
                    first_error.get_or_insert_with(|| Self::protocol_error(other));
                }
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(replies),
        }
    }

    /// Ask the server to persist the dataset's committed graph, catalog
    /// and epoch to a `.cegsnap` file at `path` on the **server's**
    /// filesystem.
    pub fn snapshot(&mut self, dataset: &str, path: &str) -> io::Result<SnapshotAck> {
        let request = Request::Snapshot {
            dataset: dataset.to_string(),
            path: path.to_string(),
        };
        match self.roundtrip(&request)? {
            Response::Snapshotted(ack) => Ok(ack),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Buffer an edge insertion on the named dataset (invisible to
    /// estimates until [`Client::commit`]).
    pub fn add_edge(
        &mut self,
        dataset: &str,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    ) -> io::Result<UpdateAck> {
        let request = Request::AddEdge {
            dataset: dataset.to_string(),
            src,
            dst,
            label,
        };
        match self.roundtrip(&request)? {
            Response::Updated(ack) => Ok(ack),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Buffer an edge deletion on the named dataset.
    pub fn del_edge(
        &mut self,
        dataset: &str,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    ) -> io::Result<UpdateAck> {
        let request = Request::DelEdge {
            dataset: dataset.to_string(),
            src,
            dst,
            label,
        };
        match self.roundtrip(&request)? {
            Response::Updated(ack) => Ok(ack),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Commit the dataset's pending updates, bumping its epoch and
    /// invalidating cached estimates computed before the commit.
    pub fn commit(&mut self, dataset: &str) -> io::Result<CommitOutcome> {
        let request = Request::Commit {
            dataset: dataset.to_string(),
        };
        match self.roundtrip(&request)? {
            Response::Committed(outcome) => Ok(outcome),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Fetch the server's counter snapshot.
    pub fn stats(&mut self) -> io::Result<EngineStats> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Politely close the connection.
    pub fn quit(mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Quit)? {
            Response::Bye => Ok(()),
            other => Err(Self::protocol_error(other)),
        }
    }
}
