//! A small blocking client for the wire protocol.
//!
//! Used by `cegcli query`, the integration tests and the CI smoke script;
//! anything that can write lines to a TCP socket (netcat included) speaks
//! the same protocol.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ceg_graph::{LabelId, VertexId};
use ceg_query::QueryGraph;

use crate::engine::{EngineStats, SlowQueryEntry, SnapshotAck, UpdateAck};
use crate::protocol::{
    parse_batch_response_header, parse_explain_response_header, parse_metric_line,
    parse_metrics_prom_response_header, parse_metrics_response_header, parse_slowlog_entry,
    parse_slowlog_response_header, split_id, ExplainItem, Request, Response,
};
use crate::registry::CommitOutcome;

/// The answer to one `ESTIMATE` request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateReply {
    /// The estimate; `None` when the estimator cannot answer.
    pub value: Option<f64>,
    /// True if the server answered from its LRU cache.
    pub cached: bool,
    /// Server-wide cache hits after this request.
    pub hits: u64,
    /// Server-wide cache misses after this request.
    pub misses: u64,
}

/// The typed outcome of one estimate slot: an answer, or one of the
/// overload rejections the server may send instead. The deadline-aware
/// client methods return these so callers can distinguish "retry with
/// backoff" (`Busy`) from "the work exceeded its budget" (`Timeout`)
/// without string-matching error text.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReply {
    /// A normal estimate reply.
    Estimate(EstimateReply),
    /// Rejected by admission control (queue full) or a draining server.
    Busy(String),
    /// Abandoned at its deadline; carries the deadline the server
    /// enforced, in milliseconds.
    Timeout {
        /// The enforced deadline in milliseconds.
        deadline_ms: u64,
    },
}

/// The answer to one `EXPLAIN_ESTIMATE` request: the same typed outcome
/// an `ESTIMATE` would produce, plus the server-side trace that produced
/// it — named wall-clock spans and named counters, in recording order.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReply {
    /// The estimate outcome — bit-identical to what `ESTIMATE` returns
    /// for the same query against the same server state.
    pub reply: QueryReply,
    /// The request id the server assigned (echoed as the `id=` tail on
    /// the reply header; the same id tags the SLOWLOG entry if the
    /// request was slow).
    pub id: Option<u64>,
    /// Wall-clock spans as `(name, micros)`, e.g. `("catalog_fill", 412)`.
    pub spans: Vec<(String, u64)>,
    /// Counters as `(name, value)`, e.g. `("cache_cold_miss", 1)`.
    pub counters: Vec<(String, u64)>,
}

impl ExplainReply {
    /// Look up a span duration by name.
    pub fn span(&self, name: &str) -> Option<u64> {
        self.spans.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// Retry policy for [`Client::connect_with`] and the `*_retry` request
/// methods. The defaults reproduce the historical client exactly: one
/// connect attempt, no retries.
///
/// Retries are **bounded and idempotent-only**: connection attempts and
/// `BUSY`-rejected read-only requests (estimates) are retried with
/// exponential backoff plus deterministic jitter. `COMMIT` is *never*
/// retried by this policy — a commit whose reply was lost may have been
/// durably applied, and blindly resending it would double-apply the
/// delta. Callers own commit retries, checking the epoch first.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// TCP connect attempts before giving up (minimum 1).
    pub connect_attempts: u32,
    /// Retries after a `BUSY` reply to an idempotent request (0 = the
    /// historical fail-fast behaviour).
    pub busy_retries: u32,
    /// Base backoff: attempt `i` sleeps about `backoff * 2^i`, jittered
    /// to avoid retry convoys from many clients at once.
    pub backoff: Duration,
    /// Cap on any single backoff sleep.
    pub backoff_max: Duration,
    /// Seed for the deterministic jitter stream (tests pin it; real
    /// clients can leave the default, distinct client *instances* still
    /// de-correlate via their attempt timing).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_attempts: 1,
            busy_retries: 0,
            backoff: Duration::from_millis(25),
            backoff_max: Duration::from_secs(1),
            jitter_seed: 0x5DEE_CE66_D123_4567,
        }
    }
}

/// One connection to a running estimation server.
pub struct Client {
    reader: BufReader<TcpStream>,
    /// Buffered so each request leaves in one write syscall — an
    /// unbuffered `writeln!` issues several small writes, which Nagle +
    /// delayed ACKs stretch into ~40ms per round-trip.
    writer: BufWriter<TcpStream>,
    config: ClientConfig,
    /// xorshift64 jitter state (the service crate deliberately has no
    /// RNG dependency; retry jitter needs spread, not randomness).
    jitter: u64,
}

impl Client {
    /// Connect to a server at `addr` (single attempt, no retries — the
    /// historical behaviour; see [`Client::connect_with`]).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect under a retry policy: up to
    /// [`ClientConfig::connect_attempts`] TCP connects, sleeping a
    /// jittered exponential backoff between failures. Returns the last
    /// connect error if every attempt fails.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let mut jitter = config.jitter_seed.max(1);
        let attempts = config.connect_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff_delay(&config, attempt - 1, &mut jitter));
            }
            match TcpStream::connect(&addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(Client {
                        writer: BufWriter::new(stream.try_clone()?),
                        reader: BufReader::new(stream),
                        config,
                        jitter,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no connect attempts made")))
    }

    /// Read one reply line, trimmed, without its ` id=<n>` tail. The
    /// server stamps every reply line (and counted-reply header) with the
    /// request id; parsers reject trailing tokens, so the tail is split
    /// off here, once, for every read path.
    fn read_reply_line(&mut self) -> io::Result<(String, Option<u64>)> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let (body, id) = split_id(line.trim_end());
        Ok((body.to_string(), id))
    }

    fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        writeln!(self.writer, "{}", request.format())?;
        self.writer.flush()?;
        let (body, _id) = self.read_reply_line()?;
        Response::parse(&body).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }

    fn protocol_error(response: Response) -> io::Error {
        let msg = match response {
            Response::Error(msg) => msg,
            other => format!("unexpected response `{}`", other.format()),
        };
        io::Error::other(msg)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Map an overload rejection onto the matching `io::ErrorKind` for
    /// the legacy (non-typed) client methods.
    fn overload_error(reply: &QueryReply) -> Option<io::Error> {
        match reply {
            QueryReply::Estimate(_) => None,
            QueryReply::Busy(msg) => Some(io::Error::new(
                io::ErrorKind::WouldBlock,
                format!("server busy: {msg}"),
            )),
            QueryReply::Timeout { deadline_ms } => Some(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("estimate exceeded its {deadline_ms}ms deadline"),
            )),
        }
    }

    /// Estimate `query` against the named dataset.
    ///
    /// `BUSY`/`TIMEOUT` replies surface as `io::Error`s of kind
    /// `WouldBlock`/`TimedOut`; use [`Client::estimate_with_deadline`]
    /// for the typed outcomes.
    pub fn estimate(&mut self, dataset: &str, query: &QueryGraph) -> io::Result<EstimateReply> {
        match self.estimate_with_deadline(dataset, query, None)? {
            QueryReply::Estimate(reply) => Ok(reply),
            other => Err(Self::overload_error(&other).expect("non-estimate reply")),
        }
    }

    /// [`Client::estimate_with_deadline`] under the client's retry
    /// policy: a `BUSY` reply is retried up to
    /// [`ClientConfig::busy_retries`] times with jittered exponential
    /// backoff (estimates are idempotent — re-asking an overloaded
    /// server is always safe). The final `BUSY` is returned typed, so an
    /// exhausted budget is still distinguishable from a timeout.
    pub fn estimate_with_retry(
        &mut self,
        dataset: &str,
        query: &QueryGraph,
        deadline_ms: Option<u64>,
    ) -> io::Result<QueryReply> {
        let retries = self.config.busy_retries;
        for attempt in 0..=retries {
            match self.estimate_with_deadline(dataset, query, deadline_ms)? {
                QueryReply::Busy(msg) if attempt < retries => {
                    let delay = backoff_delay(&self.config, attempt, &mut self.jitter);
                    let _ = msg;
                    std::thread::sleep(delay);
                }
                reply => return Ok(reply),
            }
        }
        unreachable!("loop returns on the last attempt")
    }

    /// Estimate `query`, optionally bounding the server's work to
    /// `deadline_ms` milliseconds, and return the typed outcome
    /// (estimate, `BUSY`, or `TIMEOUT`). With `None` the server applies
    /// its own default deadline, if configured.
    pub fn estimate_with_deadline(
        &mut self,
        dataset: &str,
        query: &QueryGraph,
        deadline_ms: Option<u64>,
    ) -> io::Result<QueryReply> {
        let request = Request::Estimate {
            dataset: dataset.to_string(),
            query: query.clone(),
            deadline_ms,
        };
        match self.roundtrip(&request)? {
            Response::Estimate {
                outcome,
                hits,
                misses,
            } => Ok(QueryReply::Estimate(EstimateReply {
                value: outcome.value,
                cached: outcome.cached,
                hits,
                misses,
            })),
            Response::Busy(msg) => Ok(QueryReply::Busy(msg)),
            Response::Timeout { deadline_ms } => Ok(QueryReply::Timeout { deadline_ms }),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Estimate an ordered batch of queries against one dataset in one
    /// wire round-trip per [`crate::protocol::MAX_BATCH_QUERIES`]-sized
    /// chunk (`ESTIMATE_BATCH`): the server fans each chunk across its
    /// worker pool and streams the answers back in request order.
    /// Replies line up index-for-index with `queries`. An empty batch
    /// is answered locally without touching the wire.
    pub fn estimate_batch(
        &mut self,
        dataset: &str,
        queries: &[QueryGraph],
    ) -> io::Result<Vec<EstimateReply>> {
        let replies = self.estimate_batch_with_deadline(dataset, queries, None)?;
        let mut out = Vec::with_capacity(replies.len());
        let mut first_error: Option<io::Error> = None;
        for reply in replies {
            match reply {
                QueryReply::Estimate(r) => out.push(r),
                other => {
                    first_error.get_or_insert_with(|| {
                        Self::overload_error(&other).expect("non-estimate reply")
                    });
                }
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(out),
        }
    }

    /// Like [`Client::estimate_batch`], but with an optional whole-batch
    /// deadline and typed per-slot outcomes: every slot lines up
    /// index-for-index with `queries` and is an estimate, a `BUSY`, or a
    /// `TIMEOUT` — an overloaded server never desynchronizes the stream.
    /// Oversized batches are chunked; the deadline then applies to each
    /// chunk separately.
    pub fn estimate_batch_with_deadline(
        &mut self,
        dataset: &str,
        queries: &[QueryGraph],
        deadline_ms: Option<u64>,
    ) -> io::Result<Vec<QueryReply>> {
        // Chunk transparently: sending a header past the server's batch
        // cap is an unrecoverable framing error that would drop the
        // connection, so an oversized workload must never reach the wire
        // as one batch.
        if queries.len() > crate::protocol::MAX_BATCH_QUERIES {
            let mut replies = Vec::with_capacity(queries.len());
            for chunk in queries.chunks(crate::protocol::MAX_BATCH_QUERIES) {
                replies.extend(self.estimate_batch_with_deadline(dataset, chunk, deadline_ms)?);
            }
            return Ok(replies);
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let request = Request::EstimateBatch {
            dataset: dataset.to_string(),
            queries: queries.to_vec(),
            deadline_ms,
        };
        writeln!(self.writer, "{}", request.format())?;
        self.writer.flush()?;
        let (header, _id) = self.read_reply_line()?;
        if let Some(msg) = header.strip_prefix("ERR") {
            return Err(io::Error::other(msg.trim().to_string()));
        }
        let n = parse_batch_response_header(&header)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?;
        if n != queries.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("batch of {} answered with {n} replies", queries.len()),
            ));
        }
        // Always consume all n announced lines — returning early on a
        // per-query error would leave the rest in the stream and desync
        // every later request on this connection.
        let mut replies = Vec::with_capacity(n);
        let mut first_error: Option<io::Error> = None;
        for _ in 0..n {
            let (text, _id) = self.read_reply_line()?;
            match Response::parse(&text)
                .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?
            {
                Response::Estimate {
                    outcome,
                    hits,
                    misses,
                } => replies.push(QueryReply::Estimate(EstimateReply {
                    value: outcome.value,
                    cached: outcome.cached,
                    hits,
                    misses,
                })),
                Response::Busy(msg) => replies.push(QueryReply::Busy(msg)),
                Response::Timeout { deadline_ms } => {
                    replies.push(QueryReply::Timeout { deadline_ms })
                }
                other => {
                    first_error.get_or_insert_with(|| Self::protocol_error(other));
                }
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(replies),
        }
    }

    /// Ask the server to persist the dataset's committed graph, catalog
    /// and epoch to a `.cegsnap` file at `path` on the **server's**
    /// filesystem.
    pub fn snapshot(&mut self, dataset: &str, path: &str) -> io::Result<SnapshotAck> {
        let request = Request::Snapshot {
            dataset: dataset.to_string(),
            path: path.to_string(),
        };
        match self.roundtrip(&request)? {
            Response::Snapshotted(ack) => Ok(ack),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Buffer an edge insertion on the named dataset (invisible to
    /// estimates until [`Client::commit`]).
    pub fn add_edge(
        &mut self,
        dataset: &str,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    ) -> io::Result<UpdateAck> {
        let request = Request::AddEdge {
            dataset: dataset.to_string(),
            src,
            dst,
            label,
        };
        match self.roundtrip(&request)? {
            Response::Updated(ack) => Ok(ack),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Buffer an edge deletion on the named dataset.
    pub fn del_edge(
        &mut self,
        dataset: &str,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    ) -> io::Result<UpdateAck> {
        let request = Request::DelEdge {
            dataset: dataset.to_string(),
            src,
            dst,
            label,
        };
        match self.roundtrip(&request)? {
            Response::Updated(ack) => Ok(ack),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Commit the dataset's pending updates, bumping its epoch and
    /// invalidating cached estimates computed before the commit.
    pub fn commit(&mut self, dataset: &str) -> io::Result<CommitOutcome> {
        let request = Request::Commit {
            dataset: dataset.to_string(),
        };
        match self.roundtrip(&request)? {
            Response::Committed(outcome) => Ok(outcome),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Fetch the server's counter snapshot.
    pub fn stats(&mut self) -> io::Result<EngineStats> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Fetch the full metrics registry as `(key, value)` pairs (the
    /// `METRICS` command) — latency histogram quantiles per command,
    /// queue depths, and the BUSY/timeout/error counters.
    pub fn metrics(&mut self) -> io::Result<Vec<(String, u64)>> {
        writeln!(self.writer, "{}", Request::Metrics.format())?;
        self.writer.flush()?;
        let (header, _id) = self.read_reply_line()?;
        if let Some(msg) = header.strip_prefix("ERR") {
            return Err(io::Error::other(msg.trim().to_string()));
        }
        let n = parse_metrics_response_header(&header)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?;
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            let (text, _id) = self.read_reply_line()?;
            pairs.push(
                parse_metric_line(&text)
                    .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?,
            );
        }
        Ok(pairs)
    }

    /// Estimate one query and return the outcome **plus** the server-side
    /// trace that produced it (the `EXPLAIN_ESTIMATE` command). The
    /// estimate is exactly what [`Client::estimate_with_deadline`] would
    /// return for the same query at the same moment — explain changes
    /// what is reported, never what is computed.
    pub fn explain(
        &mut self,
        dataset: &str,
        query: &QueryGraph,
        deadline_ms: Option<u64>,
    ) -> io::Result<ExplainReply> {
        let request = Request::ExplainEstimate {
            dataset: dataset.to_string(),
            query: query.clone(),
            deadline_ms,
        };
        writeln!(self.writer, "{}", request.format())?;
        self.writer.flush()?;
        let (header, id) = self.read_reply_line()?;
        if let Some(msg) = header.strip_prefix("ERR") {
            return Err(io::Error::other(msg.trim().to_string()));
        }
        let n = parse_explain_response_header(&header)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "EXPLAIN reply announced zero lines",
            ));
        }
        let (first, _id) = self.read_reply_line()?;
        let reply = match Response::parse(&first)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?
        {
            Response::Estimate {
                outcome,
                hits,
                misses,
            } => QueryReply::Estimate(EstimateReply {
                value: outcome.value,
                cached: outcome.cached,
                hits,
                misses,
            }),
            Response::Timeout { deadline_ms } => QueryReply::Timeout { deadline_ms },
            Response::Busy(msg) => QueryReply::Busy(msg),
            other => return Err(Self::protocol_error(other)),
        };
        let mut spans = Vec::new();
        let mut counters = Vec::new();
        for _ in 1..n {
            let (text, _id) = self.read_reply_line()?;
            match ExplainItem::parse(&text)
                .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?
            {
                ExplainItem::Span { name, micros } => spans.push((name, micros)),
                ExplainItem::Counter { name, value } => counters.push((name, value)),
            }
        }
        Ok(ExplainReply {
            reply,
            id,
            spans,
            counters,
        })
    }

    /// Fetch the most recent slow-query log entries, newest first (the
    /// `SLOWLOG` command). `n` bounds the count; `None` returns the whole
    /// ring (at most the server's ring capacity).
    pub fn slowlog(&mut self, n: Option<usize>) -> io::Result<Vec<SlowQueryEntry>> {
        writeln!(self.writer, "{}", Request::SlowLog { n }.format())?;
        self.writer.flush()?;
        let (header, _id) = self.read_reply_line()?;
        if let Some(msg) = header.strip_prefix("ERR") {
            return Err(io::Error::other(msg.trim().to_string()));
        }
        let count = parse_slowlog_response_header(&header)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let (text, _id) = self.read_reply_line()?;
            entries.push(
                parse_slowlog_entry(&text)
                    .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?,
            );
        }
        Ok(entries)
    }

    /// Fetch the metrics registry in Prometheus text exposition format
    /// (the `METRICS_PROM` command), one exposition line per element.
    pub fn metrics_prom(&mut self) -> io::Result<Vec<String>> {
        writeln!(self.writer, "{}", Request::MetricsProm.format())?;
        self.writer.flush()?;
        let (header, _id) = self.read_reply_line()?;
        if let Some(msg) = header.strip_prefix("ERR") {
            return Err(io::Error::other(msg.trim().to_string()));
        }
        let n = parse_metrics_prom_response_header(&header)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?;
        let mut lines = Vec::with_capacity(n);
        for _ in 0..n {
            // Exposition lines are served verbatim (no id tail): read
            // raw rather than through `read_reply_line`, which would
            // mangle a label value that happened to end in ` id=<n>`.
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-exposition",
                ));
            }
            lines.push(line.trim_end().to_string());
        }
        Ok(lines)
    }

    /// Ask the server to drain and shut down (the `SHUTDOWN` command).
    /// The connection stays usable for `PING`/`STATS`/`METRICS` while
    /// the drain proceeds; estimates and updates get `BUSY`.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Draining => Ok(()),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Politely close the connection.
    pub fn quit(mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Quit)? {
            Response::Bye => Ok(()),
            other => Err(Self::protocol_error(other)),
        }
    }
}

/// The sleep before retry `attempt` (0-based): `backoff * 2^attempt`,
/// capped at `backoff_max`, with the top half jittered by an xorshift64
/// step of `state` — deterministic per seed, de-correlated across
/// retries.
fn backoff_delay(config: &ClientConfig, attempt: u32, state: &mut u64) -> Duration {
    let base = config
        .backoff
        .checked_mul(1u32 << attempt.min(16))
        .unwrap_or(config.backoff_max)
        .min(config.backoff_max);
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    let nanos = base.as_nanos().min(u64::MAX as u128) as u64;
    // Keep at least half the exponential step so retries still spread
    // over time; jitter the other half.
    Duration::from_nanos(nanos / 2 + x % (nanos / 2).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EstimateOutcome;
    use std::net::TcpListener;

    fn fast_config() -> ClientConfig {
        ClientConfig {
            connect_attempts: 20,
            busy_retries: 3,
            backoff: Duration::from_millis(2),
            backoff_max: Duration::from_millis(20),
            jitter_seed: 42,
        }
    }

    #[test]
    fn backoff_grows_is_capped_and_jittered() {
        let config = ClientConfig {
            backoff: Duration::from_millis(10),
            backoff_max: Duration::from_millis(100),
            ..ClientConfig::default()
        };
        let mut state = 7u64;
        let d0 = backoff_delay(&config, 0, &mut state);
        let d3 = backoff_delay(&config, 3, &mut state);
        let d9 = backoff_delay(&config, 9, &mut state);
        assert!(d0 >= Duration::from_millis(5) && d0 <= Duration::from_millis(10));
        assert!(d3 >= Duration::from_millis(40) && d3 <= Duration::from_millis(80));
        assert!(d9 >= Duration::from_millis(50) && d9 <= Duration::from_millis(100));
        // Same seed → same stream (deterministic for tests)…
        let (mut a, mut b) = (42u64, 42u64);
        assert_eq!(
            backoff_delay(&config, 1, &mut a),
            backoff_delay(&config, 1, &mut b)
        );
        // …and consecutive steps of one stream jitter differently.
        assert_ne!(
            backoff_delay(&config, 1, &mut a),
            backoff_delay(&config, 1, &mut a)
        );
    }

    #[test]
    fn connect_with_retries_until_the_listener_appears() {
        // Learn a free port, leave it unbound, and only start listening
        // after a delay — the flaky-listener scenario (server still
        // booting, or restarting after a crash).
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let listener = TcpListener::bind(addr).expect("rebind");
            let (_stream, _) = listener.accept().expect("accept");
            // Hold the stream open long enough for the client to finish
            // its connect handshake.
            std::thread::sleep(Duration::from_millis(20));
        });
        let client = Client::connect_with(addr, fast_config());
        assert!(client.is_ok(), "{:?}", client.err());
        drop(client);
        server.join().unwrap();

        // A single attempt against the now-dead port fails fast.
        assert!(Client::connect(addr).is_err());
    }

    #[test]
    fn estimate_retries_through_busy_and_never_gives_up_early() {
        // A fake server that answers the first two ESTIMATEs with BUSY
        // and the third with a real estimate — the client must retry
        // exactly through the BUSYs and surface the answer.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let mut estimates = 0;
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                let resp = if line.starts_with("ESTIMATE") {
                    estimates += 1;
                    if estimates <= 2 {
                        Response::Busy("queue full".into())
                    } else {
                        Response::Estimate {
                            outcome: EstimateOutcome {
                                value: Some(8.0),
                                cached: false,
                            },
                            hits: 0,
                            misses: 1,
                        }
                    }
                } else {
                    Response::Bye
                };
                writeln!(writer, "{}", resp.format()).unwrap();
                writer.flush().unwrap();
                if matches!(resp, Response::Bye) {
                    return;
                }
            }
        });
        let mut client = Client::connect_with(addr, fast_config()).unwrap();
        let q = ceg_query::templates::path(1, &[0]);
        let reply = client.estimate_with_retry("toy", &q, None).unwrap();
        assert_eq!(
            reply,
            QueryReply::Estimate(EstimateReply {
                value: Some(8.0),
                cached: false,
                hits: 0,
                misses: 1,
            })
        );
        let _ = client.quit();
        server.join().unwrap();
    }

    #[test]
    fn busy_retries_are_bounded_and_the_final_busy_is_typed() {
        // A server that is BUSY forever: the client must stop after its
        // configured budget and hand back the typed BUSY, not loop.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let mut answered = 0usize;
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap_or(0) > 0 {
                if !line.starts_with("ESTIMATE") {
                    break;
                }
                answered += 1;
                writeln!(writer, "{}", Response::Busy("drain".into()).format()).unwrap();
                writer.flush().unwrap();
                line.clear();
            }
            answered
        });
        let config = ClientConfig {
            busy_retries: 2,
            ..fast_config()
        };
        let mut client = Client::connect_with(addr, config).unwrap();
        let q = ceg_query::templates::path(1, &[0]);
        let reply = client.estimate_with_retry("toy", &q, None).unwrap();
        assert_eq!(reply, QueryReply::Busy("drain".into()));
        drop(client);
        // 1 initial try + 2 retries, not one more.
        assert_eq!(server.join().unwrap(), 3);
    }
}
