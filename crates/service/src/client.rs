//! A small blocking client for the wire protocol.
//!
//! Used by `cegcli query`, the integration tests and the CI smoke script;
//! anything that can write lines to a TCP socket (netcat included) speaks
//! the same protocol.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ceg_graph::{LabelId, VertexId};
use ceg_query::QueryGraph;

use crate::engine::{EngineStats, UpdateAck};
use crate::protocol::{Request, Response};
use crate::registry::CommitOutcome;

/// The answer to one `ESTIMATE` request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateReply {
    /// The estimate; `None` when the estimator cannot answer.
    pub value: Option<f64>,
    /// True if the server answered from its LRU cache.
    pub cached: bool,
    /// Server-wide cache hits after this request.
    pub hits: u64,
    /// Server-wide cache misses after this request.
    pub misses: u64,
}

/// One connection to a running estimation server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        writeln!(self.writer, "{}", request.format())?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::parse(line.trim_end())
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }

    fn protocol_error(response: Response) -> io::Error {
        let msg = match response {
            Response::Error(msg) => msg,
            other => format!("unexpected response `{}`", other.format()),
        };
        io::Error::other(msg)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Estimate `query` against the named dataset.
    pub fn estimate(&mut self, dataset: &str, query: &QueryGraph) -> io::Result<EstimateReply> {
        let request = Request::Estimate {
            dataset: dataset.to_string(),
            query: query.clone(),
        };
        match self.roundtrip(&request)? {
            Response::Estimate {
                outcome,
                hits,
                misses,
            } => Ok(EstimateReply {
                value: outcome.value,
                cached: outcome.cached,
                hits,
                misses,
            }),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Buffer an edge insertion on the named dataset (invisible to
    /// estimates until [`Client::commit`]).
    pub fn add_edge(
        &mut self,
        dataset: &str,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    ) -> io::Result<UpdateAck> {
        let request = Request::AddEdge {
            dataset: dataset.to_string(),
            src,
            dst,
            label,
        };
        match self.roundtrip(&request)? {
            Response::Updated(ack) => Ok(ack),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Buffer an edge deletion on the named dataset.
    pub fn del_edge(
        &mut self,
        dataset: &str,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    ) -> io::Result<UpdateAck> {
        let request = Request::DelEdge {
            dataset: dataset.to_string(),
            src,
            dst,
            label,
        };
        match self.roundtrip(&request)? {
            Response::Updated(ack) => Ok(ack),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Commit the dataset's pending updates, bumping its epoch and
    /// invalidating cached estimates computed before the commit.
    pub fn commit(&mut self, dataset: &str) -> io::Result<CommitOutcome> {
        let request = Request::Commit {
            dataset: dataset.to_string(),
        };
        match self.roundtrip(&request)? {
            Response::Committed(outcome) => Ok(outcome),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Fetch the server's counter snapshot.
    pub fn stats(&mut self) -> io::Result<EngineStats> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(Self::protocol_error(other)),
        }
    }

    /// Politely close the connection.
    pub fn quit(mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Quit)? {
            Response::Bye => Ok(()),
            other => Err(Self::protocol_error(other)),
        }
    }
}
