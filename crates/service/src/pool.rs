//! A hand-rolled `std::thread` worker pool with sharded, batching queues.
//!
//! The build environment has no crates-registry access, so there is no
//! rayon or tokio to lean on; plain threads and `std::sync::mpsc` cover
//! what the service needs:
//!
//! * **Sharding.** Each worker owns one mpsc queue. Callers pick a shard
//!   per job ([`WorkerPool::submit`] round-robins; [`WorkerPool::submit_to`]
//!   pins) — the server round-robins and lets each worker's drained batch
//!   regroup by dataset.
//! * **Batching.** A worker blocks for the first job, then drains up to
//!   `batch_max - 1` more without blocking and hands the whole batch to
//!   the handler in one call — the handler amortizes catalog locking and
//!   pattern counting across the batch.
//! * **Scoped fan-out.** [`run_scoped`] runs borrowed jobs across a bounded
//!   number of ephemeral threads and returns results in job order; the
//!   parallel workload runner in `ceg-workload` is built on it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender, TryRecvError};
use std::thread::{self, JoinHandle};

use ceg_core::sync::{LockRank, OrderedMutex};

/// A fixed set of worker threads, each owning one job queue (shard).
///
/// Jobs of type `T` are consumed by a shared `handler` which receives
/// *batches*: the first job blocks the worker, any jobs already queued
/// behind it (up to the batch cap) ride along in the same call.
pub struct WorkerPool<T: Send + 'static> {
    shards: Vec<Sender<T>>,
    handles: Vec<JoinHandle<()>>,
    next: AtomicUsize,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawn `workers` threads (at least one), each draining batches of at
    /// most `batch_max` jobs into `handler`. The handler runs on worker
    /// threads, so it must be `Send + Sync` and is shared by value-clone.
    pub fn new<H>(workers: usize, batch_max: usize, handler: H) -> Self
    where
        H: Fn(Vec<T>) + Send + Clone + 'static,
    {
        let workers = workers.max(1);
        let batch_max = batch_max.max(1);
        let mut shards = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<T>();
            shards.push(tx);
            let handler = handler.clone();
            let handle = thread::Builder::new()
                .name(format!("ceg-worker-{w}"))
                .spawn(move || {
                    // Blocks for the first job; `Err` means every sender is
                    // gone and the pool is shutting down.
                    while let Ok(first) = rx.recv() {
                        let mut batch = vec![first];
                        while batch.len() < batch_max {
                            match rx.try_recv() {
                                Ok(job) => batch.push(job),
                                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                            }
                        }
                        // A panicking handler must not kill the shard:
                        // the queue's jobs would silently never run and
                        // every future submit to this shard would hang
                        // its caller. Contain the panic, drop the batch
                        // (reply channels close, so waiters see an
                        // error), keep serving.
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            handler(batch)
                        }));
                        if caught.is_err() {
                            eprintln!("ceg-worker-{w}: batch handler panicked; batch dropped");
                        }
                    }
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
        WorkerPool {
            shards,
            handles,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of workers (= shards).
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Enqueue a job on a specific shard (modulo the worker count). Jobs
    /// that should batch together — same dataset — go to the same shard.
    pub fn submit_to(&self, shard: usize, job: T) {
        // Send can only fail after shutdown, which consumes the pool.
        let _ = self.shards[shard % self.shards.len()].send(job);
    }

    /// Enqueue a job on the next shard round-robin.
    pub fn submit(&self, job: T) {
        let shard = self.next.fetch_add(1, Ordering::Relaxed);
        self.submit_to(shard, job);
    }

    /// Drop the queues and join every worker; queued jobs are drained
    /// before the workers exit.
    pub fn shutdown(mut self) {
        self.shards.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.shards.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Run `jobs` across at most `parallelism` ephemeral threads and return
/// their results **in job order** regardless of completion order.
///
/// Unlike [`WorkerPool`], jobs may borrow from the caller's stack (the
/// threads are scoped), which is what `ceg-workload`'s parallel runner
/// needs: estimators borrow catalogs that live on the caller's frame.
/// With `parallelism <= 1` the jobs run inline on the calling thread.
pub fn run_scoped<T, F>(parallelism: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if parallelism <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let n = jobs.len();
    // Both locks are held only for the take/store instants — never
    // while a job runs — so jobs are free to take dataset locks.
    let queue: OrderedMutex<Vec<Option<F>>> =
        OrderedMutex::new(LockRank::PoolShard, jobs.into_iter().map(Some).collect());
    let results: OrderedMutex<Vec<Option<T>>> =
        OrderedMutex::new(LockRank::PoolShard, (0..n).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..parallelism.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = queue.lock()[i].take().expect("job taken twice");
                let out = job();
                results.lock()[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("worker thread panicked before storing its result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn pool_runs_every_job() {
        let sum = Arc::new(AtomicU64::new(0));
        let pool = {
            let sum = sum.clone();
            WorkerPool::new(3, 4, move |batch: Vec<u64>| {
                for j in batch {
                    sum.fetch_add(j, Ordering::Relaxed);
                }
            })
        };
        for i in 1..=100u64 {
            pool.submit(i);
        }
        pool.shutdown(); // joins after draining
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn sharded_jobs_batch_together() {
        // One worker, jobs queued before it can drain: the batch cap
        // bounds every delivered batch.
        let max_seen = Arc::new(AtomicU64::new(0));
        let pool = {
            let max_seen = max_seen.clone();
            WorkerPool::new(1, 8, move |batch: Vec<u64>| {
                max_seen.fetch_max(batch.len() as u64, Ordering::Relaxed);
                // Give the queue time to fill behind us.
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
        };
        for i in 0..64u64 {
            pool.submit_to(0, i);
        }
        pool.shutdown();
        let m = max_seen.load(Ordering::Relaxed);
        assert!(
            (1..=8).contains(&m),
            "batch sizes must respect the cap, got {m}"
        );
    }

    #[test]
    fn panicking_handler_does_not_kill_the_shard() {
        let processed = Arc::new(AtomicU64::new(0));
        let pool = {
            let processed = processed.clone();
            WorkerPool::new(1, 1, move |batch: Vec<u64>| {
                for j in batch {
                    if j == 13 {
                        panic!("unlucky job");
                    }
                    processed.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        for i in 0..20u64 {
            pool.submit_to(0, i);
        }
        pool.shutdown();
        // Every job except the poisoned one was still handled.
        assert_eq!(processed.load(Ordering::Relaxed), 19);
    }

    #[test]
    fn run_scoped_preserves_order() {
        let inputs: Vec<usize> = (0..50).collect();
        let jobs: Vec<_> = inputs
            .iter()
            .map(|&i| move || i * 2) // borrows nothing, returns in-order marker
            .collect();
        let out = run_scoped(4, jobs);
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_scoped_borrows_caller_state() {
        let data = [1u64, 2, 3, 4, 5];
        let jobs: Vec<_> = data
            .chunks(2)
            .map(|chunk| move || chunk.iter().sum::<u64>())
            .collect();
        let out = run_scoped(2, jobs);
        assert_eq!(out, vec![3, 7, 5]);
    }

    #[test]
    fn run_scoped_serial_fallback_matches() {
        let jobs: Vec<_> = (0..5).map(|i| move || i + 1).collect();
        assert_eq!(run_scoped(1, jobs), vec![1, 2, 3, 4, 5]);
    }
}
