//! The estimator interface.

use ceg_query::QueryGraph;

/// A cardinality estimator: maps a query to an estimated output size.
///
/// `estimate` takes `&mut self` because samplers carry RNG state and some
/// estimators memoize; it returns `None` when the estimator cannot produce
/// a value for the query (missing statistics, timeout) — the experiment
/// harness counts those separately, as the paper does for SumRDF's
/// timeouts (Section 6.4).
pub trait CardinalityEstimator {
    /// Short display name used in reports (e.g. `max-hop-max`, `MOLP`).
    fn name(&self) -> String;

    /// Estimate the cardinality of `query`.
    fn estimate(&mut self, query: &QueryGraph) -> Option<f64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn estimate(&mut self, _q: &QueryGraph) -> Option<f64> {
            Some(self.0)
        }
    }

    #[test]
    fn trait_objects_work() {
        let mut est: Box<dyn CardinalityEstimator> = Box::new(Fixed(42.0));
        let q = ceg_query::templates::path(1, &[0]);
        assert_eq!(est.estimate(&q), Some(42.0));
        assert_eq!(est.name(), "fixed");
    }
}
