//! The pessimistic estimators: MOLP, CBS, and the sketched MOLP.

use ceg_catalog::DegreeStats;
use ceg_core::{bound_sketch, cbs, molp_bound, MolpInstance};
use ceg_graph::LabeledGraph;
use ceg_query::QueryGraph;

use crate::traits::CardinalityEstimator;

/// The MOLP bound as an estimator (Section 5.1). With `use_joins` the
/// instance includes 2-edge-join degree statistics — a strict superset of
/// the optimistic estimators' statistics, as the paper's comparisons
/// require (Section 6.4).
pub struct MolpEstimator<'a> {
    stats: &'a DegreeStats,
    use_joins: bool,
}

impl<'a> MolpEstimator<'a> {
    pub fn new(stats: &'a DegreeStats, use_joins: bool) -> Self {
        MolpEstimator { stats, use_joins }
    }
}

impl CardinalityEstimator for MolpEstimator<'_> {
    fn name(&self) -> String {
        "MOLP".into()
    }

    fn estimate(&mut self, query: &QueryGraph) -> Option<f64> {
        let inst = MolpInstance::from_stats(query, self.stats, self.use_joins);
        let b = molp_bound(&inst);
        b.is_finite().then_some(b)
    }
}

/// The CBS estimator (Section 5.2): minimum bounding formula over
/// coverages. Identical to MOLP on acyclic binary queries (Appendix B);
/// potentially unsafe on cyclic ones (Appendix C).
pub struct CbsEstimator<'a> {
    stats: &'a DegreeStats,
}

impl<'a> CbsEstimator<'a> {
    pub fn new(stats: &'a DegreeStats) -> Self {
        CbsEstimator { stats }
    }
}

impl CardinalityEstimator for CbsEstimator<'_> {
    fn name(&self) -> String {
        "CBS".into()
    }

    fn estimate(&mut self, query: &QueryGraph) -> Option<f64> {
        let b = cbs::cbs_bound(query, self.stats);
        b.is_finite().then_some(b)
    }
}

/// MOLP with bound-sketch partitioning of budget `k` (Section 6.3).
pub struct SketchedMolp<'a> {
    graph: &'a LabeledGraph,
    k: u32,
}

impl<'a> SketchedMolp<'a> {
    pub fn new(graph: &'a LabeledGraph, k: u32) -> Self {
        SketchedMolp { graph, k }
    }
}

impl CardinalityEstimator for SketchedMolp<'_> {
    fn name(&self) -> String {
        format!("MOLP+bs{}", self.k)
    }

    fn estimate(&mut self, query: &QueryGraph) -> Option<f64> {
        let b = bound_sketch::molp_sketch_bound(self.graph, query, self.k);
        b.is_finite().then_some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_exec::count;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(16);
        for i in 0..4 {
            b.add_edge(i, 4 + i, 0);
            b.add_edge(4 + i, 8 + (i % 3), 1);
        }
        b.add_edge(4, 8, 1);
        b.build()
    }

    #[test]
    fn molp_estimator_is_upper_bound() {
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        let q = templates::path(2, &[0, 1]);
        let mut est = MolpEstimator::new(&stats, false);
        let v = est.estimate(&q).unwrap();
        assert!(v >= count(&g, &q) as f64 - 1e-9);
    }

    #[test]
    fn cbs_equals_molp_on_acyclic() {
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        let q = templates::path(2, &[0, 1]);
        let a = MolpEstimator::new(&stats, false).estimate(&q).unwrap();
        let b = CbsEstimator::new(&stats).estimate(&q).unwrap();
        assert!((a.ln() - b.ln()).abs() < 1e-6);
    }

    #[test]
    fn sketched_molp_never_looser() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let direct = SketchedMolp::new(&g, 1).estimate(&q).unwrap();
        let sketched = SketchedMolp::new(&g, 16).estimate(&q).unwrap();
        assert!(sketched <= direct + 1e-9);
        assert!(sketched >= count(&g, &q) as f64 - 1e-9);
    }
}
