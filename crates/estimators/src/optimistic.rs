//! The optimistic estimators: CEG_O / CEG_OCR heuristics, the bound-sketch
//! variant, and the P* oracle.

use ceg_catalog::{CcrTable, MarkovTable};
use ceg_core::ceg_ocr::build_ceg_ocr;
use ceg_core::{bound_sketch, oracle, Aggr, CegO, Heuristic, PathLen};
use ceg_graph::LabeledGraph;
use ceg_query::cycles::has_large_cycle;
use ceg_query::QueryGraph;

use crate::traits::CardinalityEstimator;

/// One of the nine optimistic estimators over CEG_O (or CEG_OCR when the
/// query has a cycle longer than the Markov table and closing rates are
/// available — the configuration Section 6.2 finds best).
pub struct OptimisticEstimator<'a> {
    table: &'a MarkovTable,
    ccr: Option<&'a CcrTable>,
    heuristic: Heuristic,
    /// Force CEG_O even for large-cycle queries (used by the Figure 11
    /// comparison, which evaluates both CEGs side by side).
    force_ceg_o: bool,
}

impl<'a> OptimisticEstimator<'a> {
    /// Estimator on CEG_O only.
    pub fn new(table: &'a MarkovTable, heuristic: Heuristic) -> Self {
        OptimisticEstimator {
            table,
            ccr: None,
            heuristic,
            force_ceg_o: false,
        }
    }

    /// Estimator that switches to CEG_OCR for large-cycle queries.
    pub fn with_ccr(table: &'a MarkovTable, ccr: &'a CcrTable, heuristic: Heuristic) -> Self {
        OptimisticEstimator {
            table,
            ccr: Some(ccr),
            heuristic,
            force_ceg_o: false,
        }
    }

    /// Estimator pinned to CEG_O regardless of cycle structure.
    pub fn ceg_o_only(table: &'a MarkovTable, heuristic: Heuristic) -> Self {
        OptimisticEstimator {
            table,
            ccr: None,
            heuristic,
            force_ceg_o: true,
        }
    }

    /// The paper's recommended default: `max-hop-max` (Section 6.2).
    pub fn recommended(table: &'a MarkovTable) -> Self {
        Self::new(table, Heuristic::new(PathLen::MaxHop, Aggr::Max))
    }

    fn build_ceg(&self, query: &QueryGraph) -> CegO {
        match self.ccr {
            Some(ccr) if !self.force_ceg_o && has_large_cycle(query, self.table.h()) => {
                build_ceg_ocr(query, self.table, ccr)
            }
            _ => CegO::build(query, self.table),
        }
    }
}

impl CardinalityEstimator for OptimisticEstimator<'_> {
    fn name(&self) -> String {
        let base = self.heuristic.name();
        match self.ccr {
            Some(_) if !self.force_ceg_o => format!("{base}(ocr)"),
            _ => base,
        }
    }

    fn estimate(&mut self, query: &QueryGraph) -> Option<f64> {
        self.build_ceg(query).ceg().estimate(self.heuristic)
    }
}

/// The P* oracle estimate for one query (Section 6.2.3): the CEG path
/// whose estimate is closest to the true cardinality.
pub fn pstar_estimate(
    query: &QueryGraph,
    table: &MarkovTable,
    ccr: Option<&CcrTable>,
    truth: f64,
) -> Option<f64> {
    let ceg = match ccr {
        Some(c) if has_large_cycle(query, table.h()) => build_ceg_ocr(query, table, c),
        _ => CegO::build(query, table),
    };
    oracle::oracle_estimate(ceg.ceg(), truth, oracle::DEFAULT_CAP)
}

/// Bound-sketch-refined optimistic estimator (Sections 5.2.2, 6.3): picks
/// the chosen heuristic's path, partitions the join attributes with budget
/// `k`, and sums per-partition evaluations of the formula.
pub struct SketchedOptimistic<'a> {
    graph: &'a LabeledGraph,
    table: &'a MarkovTable,
    path_len: PathLen,
    maximize: bool,
    k: u32,
}

impl<'a> SketchedOptimistic<'a> {
    pub fn new(
        graph: &'a LabeledGraph,
        table: &'a MarkovTable,
        path_len: PathLen,
        maximize: bool,
        k: u32,
    ) -> Self {
        SketchedOptimistic {
            graph,
            table,
            path_len,
            maximize,
            k,
        }
    }

    /// The configuration benchmarked in Figure 12: `max-hop-max` + sketch.
    pub fn max_hop_max(graph: &'a LabeledGraph, table: &'a MarkovTable, k: u32) -> Self {
        Self::new(graph, table, PathLen::MaxHop, true, k)
    }
}

impl CardinalityEstimator for SketchedOptimistic<'_> {
    fn name(&self) -> String {
        format!("max-hop-max+bs{}", self.k)
    }

    fn estimate(&mut self, query: &QueryGraph) -> Option<f64> {
        bound_sketch::optimistic_sketch_estimate(
            self.graph,
            query,
            self.table,
            self.path_len,
            self.maximize,
            self.k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_exec::count;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(16);
        for i in 0..4 {
            b.add_edge(i, 4 + i, 0);
            b.add_edge(4 + i, 8 + i, 1);
            b.add_edge(8 + i, 12 + (i % 2), 2);
        }
        b.build()
    }

    #[test]
    fn estimator_runs_all_heuristics() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        for h in Heuristic::all() {
            let mut est = OptimisticEstimator::new(&t, h);
            let v = est.estimate(&q).unwrap();
            assert!(v >= 0.0, "{}", est.name());
        }
    }

    #[test]
    fn recommended_is_max_hop_max() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        assert_eq!(OptimisticEstimator::recommended(&t).name(), "max-hop-max");
    }

    #[test]
    fn pstar_beats_or_matches_heuristics() {
        let g = toy();
        let q = templates::q5f(&[0, 1, 2, 2, 2]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let truth = count(&g, &q) as f64;
        let star = pstar_estimate(&q, &t, None, truth).unwrap();
        let star_err = ceg_core::oracle::qerror(star, truth);
        for h in Heuristic::all() {
            if h.aggr == Aggr::Avg {
                continue; // avg is not a single-path estimate
            }
            let mut e = OptimisticEstimator::new(&t, h);
            if let Some(v) = e.estimate(&q) {
                assert!(
                    star_err <= ceg_core::oracle::qerror(v, truth) + 1e-9,
                    "P* {star} beaten by {} = {v} (truth {truth})",
                    h.name()
                );
            }
        }
    }

    #[test]
    fn sketched_k1_equals_plain_path_estimate() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let mut sk = SketchedOptimistic::max_hop_max(&g, &t, 1);
        let mut plain = OptimisticEstimator::recommended(&t);
        let a = sk.estimate(&q).unwrap();
        let b = plain.estimate(&q).unwrap();
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}
