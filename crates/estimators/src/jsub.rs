//! Index-based join sampling (Leis et al., "Cardinality Estimation Done
//! Right"; the JSUB family of the G-CARE benchmark).
//!
//! Where WanderJoin extends each sampled tuple by *one random* edge per
//! query edge, index-based sampling extends each sampled start tuple
//! *exhaustively* (a full index-backed join of the residual query). The
//! per-sample work is higher but the per-sample estimate has no walk
//! variance — the trade-off the G-CARE study documents between the two
//! sampler families. The paper compares against WanderJoin as the best
//! of these; we include JSUB for completeness.

use ceg_exec::{count_with_limit, CountBudget, VarConstraint, VarConstraints};
use ceg_graph::{LabeledGraph, VertexId};
use ceg_query::QueryGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traits::CardinalityEstimator;

/// Index-based join sampling with a fixed sampling ratio.
pub struct JsubEstimator<'a> {
    graph: &'a LabeledGraph,
    ratio: f64,
    /// Work cap per sampled tuple (bounds the exhaustive residual join).
    per_sample_budget: u64,
    rng: StdRng,
}

impl<'a> JsubEstimator<'a> {
    pub fn new(graph: &'a LabeledGraph, ratio: f64, seed: u64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0);
        JsubEstimator {
            graph,
            ratio,
            per_sample_budget: 2_000_000,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Override the per-sample work cap.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.per_sample_budget = budget;
        self
    }
}

impl CardinalityEstimator for JsubEstimator<'_> {
    fn name(&self) -> String {
        format!("JSUB({}%)", self.ratio * 100.0)
    }

    fn estimate(&mut self, query: &QueryGraph) -> Option<f64> {
        if query.num_edges() == 0 {
            return Some(1.0);
        }
        // start from the smallest relation
        let start = (0..query.num_edges())
            .min_by_key(|&i| self.graph.label_count(query.edge(i).label))
            .unwrap();
        let e = query.edge(start);
        let edges: Vec<(VertexId, VertexId)> = self.graph.edges(e.label).collect();
        if edges.is_empty() {
            return Some(0.0);
        }
        let n = ((self.ratio * edges.len() as f64).ceil() as usize).max(1);
        let mut total = 0.0f64;
        let mut completed = 0usize;
        for _ in 0..n {
            let (s, d) = edges[self.rng.random_range(0..edges.len())];
            if e.src == e.dst && s != d {
                continue;
            }
            let mut cons = VarConstraints::none(query.num_vars());
            cons.set(e.src, VarConstraint::Fixed(s));
            cons.set(e.dst, VarConstraint::Fixed(d));
            match count_with_limit(
                self.graph,
                query,
                &cons,
                CountBudget::new(self.per_sample_budget),
            ) {
                Some(c) => {
                    total += c as f64;
                    completed += 1;
                }
                None => continue, // per-sample budget blown: drop sample
            }
        }
        if completed == 0 {
            return None; // every sample timed out
        }
        Some(total / completed as f64 * edges.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_exec::count;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(40);
        for i in 0..10u32 {
            b.add_edge(i, 10 + i, 0);
            b.add_edge(10 + i, 20 + i % 5, 1);
            b.add_edge(20 + i % 5, 30 + i % 3, 2);
        }
        b.build()
    }

    #[test]
    fn full_ratio_is_nearly_exact() {
        // sampling every start tuple with exhaustive extension is exact
        // in expectation; with replacement it still converges fast
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let truth = count(&g, &q) as f64;
        let mut total = 0.0;
        for seed in 0..50 {
            total += JsubEstimator::new(&g, 1.0, seed).estimate(&q).unwrap();
        }
        let avg = total / 50.0;
        assert!((avg - truth).abs() / truth < 0.1, "avg {avg} truth {truth}");
    }

    #[test]
    fn lower_variance_than_wanderjoin_at_same_ratio() {
        use crate::wander_join::WanderJoinEstimator;
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let truth = count(&g, &q) as f64;
        let var = |vals: &[f64]| {
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m).powi(2)).sum::<f64>() / vals.len() as f64
        };
        let js: Vec<f64> = (0..40)
            .map(|s| JsubEstimator::new(&g, 0.3, s).estimate(&q).unwrap())
            .collect();
        let wj: Vec<f64> = (0..40)
            .map(|s| WanderJoinEstimator::new(&g, 0.3, s).estimate(&q).unwrap())
            .collect();
        assert!(
            var(&js) <= var(&wj) * 1.5,
            "JSUB var {} vs WJ var {} (truth {truth})",
            var(&js),
            var(&wj)
        );
    }

    #[test]
    fn empty_relation_is_zero() {
        let g = toy();
        let q = templates::path(2, &[2, 0]); // no matches
        let est = JsubEstimator::new(&g, 0.5, 1).estimate(&q).unwrap();
        assert_eq!(est, 0.0);
    }

    #[test]
    fn exhausted_budget_returns_none() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let mut est = JsubEstimator::new(&g, 0.5, 1).with_budget(0);
        assert_eq!(est.estimate(&q), None);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let a = JsubEstimator::new(&g, 0.4, 11).estimate(&q);
        let b = JsubEstimator::new(&g, 0.4, 11).estimate(&q);
        assert_eq!(a, b);
    }
}
