//! Baseline summary-based estimators: Characteristic Sets, SumRDF-style
//! summaries, and the RDF-3X default estimator (Sections 6.4, 6.6).

use ceg_catalog::{CharacteristicSets, SummaryGraph};
use ceg_graph::LabelId;
use ceg_query::{QueryGraph, VarId};

use crate::traits::CardinalityEstimator;

/// Characteristic Sets estimator (Neumann & Moerkotte).
///
/// The query is decomposed into out-stars (every edge belongs to the star
/// rooted at its source variable); each star is estimated from the CS
/// statistics; the star estimates are multiplied, and each join link
/// between stars contributes an independence-assumption selectivity of
/// `1/|V|` (the probability that the two star attributes meet on the same
/// vertex). As the paper observes, this underestimates on virtually every
/// multi-star query.
pub struct CsEstimator<'a> {
    cs: &'a CharacteristicSets,
}

impl<'a> CsEstimator<'a> {
    pub fn new(cs: &'a CharacteristicSets) -> Self {
        CsEstimator { cs }
    }

    /// Decompose into (center, labels) out-stars.
    fn stars(query: &QueryGraph) -> Vec<(VarId, Vec<LabelId>)> {
        let mut stars: Vec<(VarId, Vec<LabelId>)> = Vec::new();
        for e in query.edges() {
            match stars.iter_mut().find(|(c, _)| *c == e.src) {
                Some((_, ls)) => ls.push(e.label),
                None => stars.push((e.src, vec![e.label])),
            }
        }
        stars
    }
}

impl CardinalityEstimator for CsEstimator<'_> {
    fn name(&self) -> String {
        "CS".into()
    }

    fn estimate(&mut self, query: &QueryGraph) -> Option<f64> {
        let stars = Self::stars(query);
        if stars.is_empty() {
            return Some(self.cs.num_vertices() as f64);
        }
        let mut est = 1.0f64;
        // count variable occurrences across stars to derive join links
        let mut occurrences = vec![0u32; query.num_vars() as usize];
        for (center, labels) in &stars {
            est *= self.cs.estimate_star(labels);
            // vars of this star: center + one leaf per edge; leaves are
            // the dst of each edge rooted here
            let mut star_vars: Vec<VarId> = vec![*center];
            for e in query.edges().iter().filter(|e| e.src == *center) {
                if !star_vars.contains(&e.dst) {
                    star_vars.push(e.dst);
                }
            }
            for v in star_vars {
                occurrences[v as usize] += 1;
            }
        }
        let links: u32 = occurrences.iter().map(|&o| o.saturating_sub(1)).sum();
        let n = self.cs.num_vertices().max(1) as f64;
        est *= n.powi(-(links as i32));
        Some(est)
    }
}

/// SumRDF-style estimator over a bucketed summary graph, with a work
/// budget that models the paper's SumRDF timeouts.
pub struct SumRdfEstimator<'a> {
    summary: &'a SummaryGraph,
    budget: u64,
}

impl<'a> SumRdfEstimator<'a> {
    pub fn new(summary: &'a SummaryGraph, budget: u64) -> Self {
        SumRdfEstimator { summary, budget }
    }
}

impl CardinalityEstimator for SumRdfEstimator<'_> {
    fn name(&self) -> String {
        "SumRDF".into()
    }

    fn estimate(&mut self, query: &QueryGraph) -> Option<f64> {
        self.summary.estimate(query, self.budget)
    }
}

/// RDF-3X-style default estimator: relation cardinalities multiplied with
/// per-join "magic constant" selectivities (the open-source RDF-3X
/// estimator the paper describes in Section 6.6: "basic statistics about
/// the original triple counts and some 'magic' constants"). Deliberately
/// crude — it is the baseline whose plans the injected estimators beat.
pub struct Rdf3xDefaultEstimator {
    label_counts: Vec<usize>,
    magic: f64,
}

impl Rdf3xDefaultEstimator {
    pub fn new(graph: &ceg_graph::LabeledGraph) -> Self {
        Rdf3xDefaultEstimator {
            label_counts: (0..graph.num_labels() as LabelId)
                .map(|l| graph.label_count(l))
                .collect(),
            magic: 0.01,
        }
    }
}

impl CardinalityEstimator for Rdf3xDefaultEstimator {
    fn name(&self) -> String {
        "RDF-3X".into()
    }

    fn estimate(&mut self, query: &QueryGraph) -> Option<f64> {
        let mut est = 1.0f64;
        for e in query.edges() {
            est *= *self.label_counts.get(e.label as usize).unwrap_or(&0) as f64;
        }
        // one magic selectivity per join (shared variable occurrence)
        let joins: usize = (0..query.num_vars())
            .map(|v| query.var_degree(v).saturating_sub(1))
            .sum();
        est *= self.magic.powi(joins as i32);
        Some(est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_exec::count;
    use ceg_graph::{GraphBuilder, LabeledGraph};
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(20);
        for i in 0..5 {
            b.add_edge(i, 5 + i, 0);
            b.add_edge(i, 10 + i, 1);
            b.add_edge(5 + i, 15 + (i % 2), 2);
        }
        b.build()
    }

    #[test]
    fn cs_star_estimate_is_exact_on_pure_stars() {
        // every vertex 0..5 has exactly one 0-edge and one 1-edge: CS is
        // exact on the 2-star
        let g = toy();
        let cs = CharacteristicSets::build(&g);
        let q = templates::star(2, &[0, 1]);
        let est = CsEstimator::new(&cs).estimate(&q).unwrap();
        assert!((est - count(&g, &q) as f64).abs() < 1e-9);
    }

    #[test]
    fn cs_underestimates_paths() {
        let g = toy();
        let cs = CharacteristicSets::build(&g);
        let q = templates::path(2, &[0, 2]);
        let est = CsEstimator::new(&cs).estimate(&q).unwrap();
        let truth = count(&g, &q) as f64;
        assert!(truth > 0.0);
        assert!(est < truth, "CS should underestimate: {est} vs {truth}");
    }

    #[test]
    fn sumrdf_single_relation_exact() {
        let g = toy();
        let s = SummaryGraph::build(&g, 16);
        let q = templates::path(1, &[2]);
        let est = SumRdfEstimator::new(&s, u64::MAX).estimate(&q).unwrap();
        assert!((est - g.label_count(2) as f64).abs() < 1e-9);
    }

    #[test]
    fn sumrdf_times_out_gracefully() {
        let g = toy();
        let s = SummaryGraph::build(&g, 16);
        let q = templates::path(3, &[0, 2, 2]);
        assert_eq!(SumRdfEstimator::new(&s, 1).estimate(&q), None);
    }

    #[test]
    fn rdf3x_is_deterministic_and_positive() {
        let g = toy();
        let mut est = Rdf3xDefaultEstimator::new(&g);
        let q = templates::path(2, &[0, 2]);
        let v = est.estimate(&q).unwrap();
        assert!(v > 0.0);
        assert_eq!(est.estimate(&q), Some(v));
    }
}
