//! Maximum-entropy estimation over Markov-table selectivities.
//!
//! Section 7 of the paper sketches (and leaves to future work) applying
//! Markl et al.'s consistent-selectivity approach to join queries: model
//! the query as the Cartesian product of its relations filtered by one
//! equality *predicate per join variable*; every Markov-table entry whose
//! pattern fully contains some join variables yields a known selectivity
//! for that predicate subset (`sel = |P_S| / Π_{i∈S} |R_i|`, exactly the
//! paper's example); the estimate is the all-predicates probability of
//! the maximum-entropy distribution consistent with those selectivities,
//! times the product of the relation sizes.
//!
//! The max-ent program is solved with iterative proportional fitting
//! (IPF) over the `2^P` predicate-subset atoms. Patterns that contain a
//! join variable only partially (some of its occurrences lie outside the
//! pattern) constrain a *weakened* predicate and are conservatively
//! skipped. As the paper anticipates, the result is another optimistic
//! estimator over the same statistics.

use ceg_catalog::MarkovTable;
use ceg_graph::LabeledGraph;
use ceg_query::{QueryGraph, VarId};

use crate::traits::CardinalityEstimator;

/// Maximum-entropy estimator over a Markov table.
pub struct MaxEntEstimator<'a> {
    table: &'a MarkovTable,
    label_counts: Vec<f64>,
    max_iters: usize,
    tolerance: f64,
}

impl<'a> MaxEntEstimator<'a> {
    pub fn new(graph: &LabeledGraph, table: &'a MarkovTable) -> Self {
        MaxEntEstimator {
            table,
            label_counts: (0..graph.num_labels() as u16)
                .map(|l| graph.label_count(l) as f64)
                .collect(),
            max_iters: 500,
            tolerance: 1e-10,
        }
    }

    fn relation_size(&self, query: &QueryGraph, edge: usize) -> f64 {
        let l = query.edge(edge).label as usize;
        self.label_counts.get(l).copied().unwrap_or(0.0)
    }

    /// Constraints `(predicate mask, selectivity)` derived from the
    /// Markov table; `preds` is the list of join variables.
    fn constraints(&self, query: &QueryGraph, preds: &[VarId]) -> Option<Vec<(usize, f64)>> {
        let mut out: Vec<(usize, f64)> = Vec::new();
        let subsets = query.connected_subsets();
        for mask in subsets {
            if mask.len() > self.table.h() && mask != query.full_mask() {
                continue;
            }
            // pattern canonicalization is capped at 8 variables; larger
            // sub-queries are never in the table anyway
            if query.vars_of(mask).count_ones() > 8 {
                continue;
            }
            let Some(card) = self.table.card_of_subquery(query, mask) else {
                continue; // pattern not stored (e.g. the full query)
            };
            // predicates fully internal to the pattern: every query
            // occurrence of the variable is one of the pattern's edges
            let mut pmask = 0usize;
            let mut all_internal = true;
            for (pi, &v) in preds.iter().enumerate() {
                let total_occ = query.var_degree(v);
                let in_s = query.edges_at(v).filter(|&i| mask.contains(i)).count();
                if in_s == 0 {
                    continue;
                }
                if in_s == total_occ {
                    pmask |= 1 << pi;
                } else if in_s >= 2 {
                    // partially-contained join variable with at least two
                    // internal occurrences: the pattern applies a weakened
                    // predicate we cannot express — skip this constraint
                    all_internal = false;
                }
            }
            if !all_internal || pmask == 0 {
                continue;
            }
            let mut denom = 1.0f64;
            for i in mask.iter() {
                denom *= self.relation_size(query, i);
            }
            if denom == 0.0 {
                return None;
            }
            out.push((pmask, (card as f64 / denom).min(1.0)));
        }

        // A predicate over a variable with more occurrences than any
        // stored pattern covers (e.g. a star center under h = 2) would
        // otherwise float at the uniform 0.5 marginal, inflating the
        // estimate absurdly. Pin it with the chain-independence
        // approximation: P(o_1 = … = o_k) ≈ Π of k-1 pairwise
        // selectivities, each taken from the stored 2-edge patterns.
        for (pi, &v) in preds.iter().enumerate() {
            if out.iter().any(|&(m, _)| m & (1 << pi) != 0) {
                continue;
            }
            let occurrences: Vec<usize> = query.edges_at(v).collect();
            let k = occurrences.len();
            let mut pair_sels: Vec<f64> = Vec::new();
            for (a, &i) in occurrences.iter().enumerate() {
                for &j in &occurrences[a + 1..] {
                    let mask = ceg_query::EdgeMask::single(i).insert(j);
                    let Some(card) = self.table.card_of_subquery(query, mask) else {
                        continue;
                    };
                    let denom = self.relation_size(query, i) * self.relation_size(query, j);
                    if denom > 0.0 {
                        pair_sels.push((card as f64 / denom).min(1.0));
                    }
                }
            }
            if pair_sels.is_empty() {
                continue; // genuinely no statistics; leave unconstrained
            }
            let gm =
                pair_sels.iter().map(|s| s.max(1e-300).ln()).sum::<f64>() / pair_sels.len() as f64;
            let sel = (gm * (k.saturating_sub(1)) as f64).exp().min(1.0);
            out.push((1 << pi, sel));
        }

        out.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        out.dedup();
        Some(out)
    }
}

impl CardinalityEstimator for MaxEntEstimator<'_> {
    fn name(&self) -> String {
        "MaxEnt".into()
    }

    fn estimate(&mut self, query: &QueryGraph) -> Option<f64> {
        if query.num_edges() == 0 {
            return Some(1.0);
        }
        let mut product = 1.0f64;
        for i in 0..query.num_edges() {
            let s = self.relation_size(query, i);
            if s == 0.0 {
                return Some(0.0);
            }
            product *= s;
        }
        let preds = query.join_vars();
        if preds.is_empty() {
            return Some(product); // pure Cartesian product
        }
        if preds.len() > 12 {
            return None; // 2^P atoms
        }
        let constraints = self.constraints(query, &preds)?;
        if constraints.iter().any(|&(_, s)| s == 0.0) {
            return Some(0.0);
        }
        let n = 1usize << preds.len();
        let full = n - 1;

        // IPF from the uniform distribution
        let mut x = vec![1.0f64 / n as f64; n];
        for _ in 0..self.max_iters {
            let mut worst = 0.0f64;
            for &(pmask, sel) in &constraints {
                let marginal: f64 = (0..n).filter(|t| t & pmask == pmask).map(|t| x[t]).sum();
                let rest = 1.0 - marginal;
                worst = worst.max((marginal - sel).abs());
                if marginal <= 0.0 || rest <= 0.0 {
                    continue;
                }
                let up = sel / marginal;
                let down = (1.0 - sel) / rest;
                for (t, v) in x.iter_mut().enumerate() {
                    *v *= if t & pmask == pmask { up } else { down };
                }
            }
            if worst < self.tolerance {
                break;
            }
        }
        Some(x[full] * product)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_exec::count;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(20);
        for i in 0..6 {
            b.add_edge(i, 6 + i, 0);
            b.add_edge(6 + i, 12 + (i % 4), 1);
            b.add_edge(12 + (i % 4), 16 + (i % 3), 2);
        }
        b.build()
    }

    #[test]
    fn exact_when_query_fits_in_table() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let est = MaxEntEstimator::new(&g, &t).estimate(&q).unwrap();
        let truth = count(&g, &q) as f64;
        assert!(
            (est - truth).abs() / truth < 1e-3,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn reduces_to_independence_without_shared_constraints() {
        // 3-path with h = 2: predicates p_{a1}, p_{a2}; constraints pin
        // each individually, the joint defaults to the product — the
        // classic conditional-independence estimate |AB||BC|/(|A||B||C|)
        // rescaled, i.e. |AB|·|BC|/|B|.
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let est = MaxEntEstimator::new(&g, &t).estimate(&q).unwrap();
        let ab = count(&g, &templates::path(2, &[0, 1])) as f64;
        let bc = count(&g, &templates::path(2, &[1, 2])) as f64;
        let expect = ab * bc / g.label_count(1) as f64;
        assert!(
            (est - expect).abs() / expect < 1e-3,
            "est {est} vs markov formula {expect}"
        );
    }

    #[test]
    fn zero_selectivity_estimates_zero() {
        let g = toy();
        let q = templates::path(2, &[1, 0]); // empty join
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let est = MaxEntEstimator::new(&g, &t).estimate(&q).unwrap();
        assert_eq!(est, 0.0);
    }

    #[test]
    fn star_center_is_one_predicate() {
        // 2-star with h = 2: the single predicate is pinned exactly
        let g = toy();
        let q = templates::star(2, &[0, 0]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let est = MaxEntEstimator::new(&g, &t).estimate(&q).unwrap();
        let truth = count(&g, &q) as f64;
        assert!(
            (est - truth).abs() / truth < 1e-3,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn single_edge_is_relation_size() {
        let g = toy();
        let q = templates::path(1, &[0]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let est = MaxEntEstimator::new(&g, &t).estimate(&q).unwrap();
        assert!((est - g.label_count(0) as f64).abs() < 1e-6);
    }

    #[test]
    fn q5f_estimate_is_positive_and_finite() {
        let g = toy();
        let q = templates::q5f(&[0, 1, 2, 2, 2]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let est = MaxEntEstimator::new(&g, &t).estimate(&q).unwrap();
        assert!(est.is_finite() && est >= 0.0);
    }
}
