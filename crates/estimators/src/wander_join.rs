//! WanderJoin — the sampling-based baseline (Li et al., as used by
//! G-CARE; Section 6.5).
//!
//! WJ picks one query edge, samples a fraction `r` of its matching data
//! edges (with replacement), and extends each sample one query edge at a
//! time by choosing uniformly among the data edges that extend the current
//! partial binding. Multiplying the candidate-set sizes along the walk
//! gives an unbiased (Horvitz–Thompson) per-sample estimate; the final
//! estimate is the sample mean. Accuracy scales with `r` at the price of
//! actually performing joins — the time/accuracy trade-off Figure 14
//! studies.

use ceg_graph::{FxHashMap, LabelId, LabeledGraph, VertexId};
use ceg_query::{QueryGraph, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traits::CardinalityEstimator;

/// WanderJoin with a fixed sampling ratio.
pub struct WanderJoinEstimator<'a> {
    graph: &'a LabeledGraph,
    ratio: f64,
    rng: StdRng,
    /// Materialized edge lists per label (WJ's sampling index).
    edge_lists: FxHashMap<LabelId, Vec<(VertexId, VertexId)>>,
}

impl<'a> WanderJoinEstimator<'a> {
    /// `ratio ∈ (0, 1]`: the fraction of the start relation to sample.
    pub fn new(graph: &'a LabeledGraph, ratio: f64, seed: u64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0);
        WanderJoinEstimator {
            graph,
            ratio,
            rng: StdRng::seed_from_u64(seed),
            edge_lists: FxHashMap::default(),
        }
    }

    fn edge_list(&mut self, label: LabelId) -> &[(VertexId, VertexId)] {
        self.edge_lists
            .entry(label)
            .or_insert_with(|| self.graph.edges(label).collect())
    }

    /// Walk order: start edge first, then edges adjacent to bound vars.
    /// `None` on degenerate queries — no edges to start from, or a
    /// disconnected query no walk can cover — so [`Self::estimate`]
    /// reports "cannot answer" instead of panicking.
    fn walk_order(&self, query: &QueryGraph) -> Option<Vec<usize>> {
        let start =
            (0..query.num_edges()).min_by_key(|&i| self.graph.label_count(query.edge(i).label))?;
        let mut order = vec![start];
        let e0 = query.edge(start);
        let mut bound: u32 = (1 << e0.src) | (1 << e0.dst);
        let mut used = 1u32 << start;
        while order.len() < query.num_edges() {
            let next = (0..query.num_edges()).find(|&i| {
                used & (1 << i) == 0 && {
                    let e = query.edge(i);
                    bound & ((1 << e.src) | (1 << e.dst)) != 0
                }
            })?;
            let e = query.edge(next);
            bound |= (1 << e.src) | (1 << e.dst);
            used |= 1 << next;
            order.push(next);
        }
        Some(order)
    }

    /// One random walk; the HT per-sample estimate (0 on a failed walk).
    fn walk(&mut self, query: &QueryGraph, order: &[usize]) -> f64 {
        let start_edge = query.edge(order[0]);
        let list_len = self.edge_list(start_edge.label).len();
        if list_len == 0 {
            return 0.0;
        }
        let pick = self.rng.random_range(0..list_len);
        let (s0, d0) = self.edge_list(start_edge.label)[pick];
        let mut binding = vec![0 as VertexId; query.num_vars() as usize];
        let mut bound = 0u32;
        let set = |binding: &mut Vec<VertexId>, bound: &mut u32, v: VarId, x: VertexId| -> bool {
            if *bound & (1 << v) != 0 {
                return binding[v as usize] == x;
            }
            binding[v as usize] = x;
            *bound |= 1 << v;
            true
        };
        if !set(&mut binding, &mut bound, start_edge.src, s0)
            || !set(&mut binding, &mut bound, start_edge.dst, d0)
        {
            return 0.0;
        }
        let mut weight = list_len as f64;
        for &qi in &order[1..] {
            let e = query.edge(qi);
            let sb = bound & (1 << e.src) != 0;
            let db = bound & (1 << e.dst) != 0;
            match (sb, db) {
                (true, true) => {
                    if !self.graph.has_edge(
                        binding[e.src as usize],
                        binding[e.dst as usize],
                        e.label,
                    ) {
                        return 0.0;
                    }
                }
                (true, false) => {
                    let cands = self.graph.out_neighbors(binding[e.src as usize], e.label);
                    if cands.is_empty() {
                        return 0.0;
                    }
                    let c = cands[self.rng.random_range(0..cands.len())];
                    weight *= cands.len() as f64;
                    binding[e.dst as usize] = c;
                    bound |= 1 << e.dst;
                }
                (false, true) => {
                    let cands = self.graph.in_neighbors(binding[e.dst as usize], e.label);
                    if cands.is_empty() {
                        return 0.0;
                    }
                    let c = cands[self.rng.random_range(0..cands.len())];
                    weight *= cands.len() as f64;
                    binding[e.src as usize] = c;
                    bound |= 1 << e.src;
                }
                (false, false) => unreachable!("walk order keeps the query connected"),
            }
        }
        weight
    }
}

impl CardinalityEstimator for WanderJoinEstimator<'_> {
    fn name(&self) -> String {
        format!("WJ({}%)", self.ratio * 100.0)
    }

    fn estimate(&mut self, query: &QueryGraph) -> Option<f64> {
        // Degenerate queries — empty or disconnected — are unanswerable
        // by a single random walk: report `None` like any other query the
        // estimator cannot handle. (The service rejects these at parse
        // time; this guards direct library callers, which previously hit
        // a panic on disconnected input.)
        let order = self.walk_order(query)?;
        let start_count = self.graph.label_count(query.edge(order[0]).label);
        if start_count == 0 {
            return Some(0.0);
        }
        let n = ((self.ratio * start_count as f64).ceil() as usize).max(1);
        let mut sum = 0.0;
        for _ in 0..n {
            sum += self.walk(query, &order);
        }
        finite_or_none(sum / n as f64)
    }
}

/// Long walks over high-degree vertices multiply candidate-set sizes
/// until the HT weight overflows f64 — a degenerate sample, not an
/// estimate. Report "cannot answer" rather than leak `inf`/`NaN` into
/// caches and wire replies.
fn finite_or_none(mean: f64) -> Option<f64> {
    mean.is_finite().then_some(mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_exec::count;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(40);
        for i in 0..10u32 {
            b.add_edge(i, 10 + i, 0);
            b.add_edge(10 + i, 20 + i % 5, 1);
            b.add_edge(20 + i % 5, 30 + i % 3, 2);
        }
        b.build()
    }

    #[test]
    fn wj_is_close_at_full_ratio() {
        // ratio 1 with a deterministic start relation still samples, but
        // averaging over many runs should land near the truth
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let truth = count(&g, &q) as f64;
        let mut total = 0.0;
        let runs = 200;
        for seed in 0..runs {
            let mut wj = WanderJoinEstimator::new(&g, 1.0, seed);
            total += wj.estimate(&q).unwrap();
        }
        let avg = total / runs as f64;
        assert!(
            (avg - truth).abs() / truth < 0.15,
            "avg {avg} too far from {truth}"
        );
    }

    #[test]
    fn wj_zero_when_no_match() {
        let g = toy();
        let q = templates::path(2, &[1, 0]); // no 1-edge feeds a 0-edge
        let mut wj = WanderJoinEstimator::new(&g, 0.5, 1);
        assert_eq!(wj.estimate(&q), Some(0.0));
    }

    #[test]
    fn wj_deterministic_with_seed() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let a = WanderJoinEstimator::new(&g, 0.5, 9).estimate(&q);
        let b = WanderJoinEstimator::new(&g, 0.5, 9).estimate(&q);
        assert_eq!(a, b);
    }

    #[test]
    fn wj_handles_cyclic_queries() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 0, 0);
        let g = b.build();
        let q = templates::cycle(3, &[0, 0, 0]);
        let mut total = 0.0;
        for seed in 0..100 {
            total += WanderJoinEstimator::new(&g, 1.0, seed)
                .estimate(&q)
                .unwrap();
        }
        let avg = total / 100.0;
        let truth = count(&g, &q) as f64; // 3
        assert!(
            (avg - truth).abs() / truth < 0.25,
            "avg {avg} truth {truth}"
        );
    }

    #[test]
    fn name_includes_ratio() {
        let g = toy();
        let wj = WanderJoinEstimator::new(&g, 0.25, 0);
        assert_eq!(wj.name(), "WJ(25%)");
    }

    #[test]
    fn wj_clamps_non_finite_means_to_none() {
        // The overflow itself needs ~2^1024 candidate products — not
        // constructible from a test graph — so the clamp is pinned
        // directly on the guard the estimate path funnels through.
        assert_eq!(finite_or_none(f64::INFINITY), None);
        assert_eq!(finite_or_none(f64::NEG_INFINITY), None);
        assert_eq!(finite_or_none(f64::NAN), None);
        assert_eq!(finite_or_none(0.0), Some(0.0));
        assert_eq!(finite_or_none(42.5), Some(42.5));
        assert_eq!(finite_or_none(f64::MAX), Some(f64::MAX));
    }

    #[test]
    fn wj_returns_none_on_empty_query() {
        let g = toy();
        let mut wj = WanderJoinEstimator::new(&g, 0.5, 1);
        let empty = ceg_query::QueryGraph::new(2, vec![]);
        assert_eq!(wj.estimate(&empty), None);
    }

    #[test]
    fn wj_returns_none_on_disconnected_query() {
        use ceg_query::{QueryEdge, QueryGraph};
        let g = toy();
        let mut wj = WanderJoinEstimator::new(&g, 0.5, 1);
        // Two components: {a0 -0-> a1} and {a2 -1-> a3}. A single walk
        // cannot cover both; this used to panic on an internal expect.
        let q = QueryGraph::new(4, vec![QueryEdge::new(0, 1, 0), QueryEdge::new(2, 3, 1)]);
        assert!(!q.is_connected());
        assert_eq!(wj.estimate(&q), None);
        // The estimator is still usable afterwards.
        assert!(wj.estimate(&templates::path(2, &[0, 1])).is_some());
    }
}
