//! # ceg-estimators
//!
//! High-level estimator API: every technique evaluated in the paper's
//! Section 6, behind one [`CardinalityEstimator`] trait.
//!
//! * [`OptimisticEstimator`] — the nine CEG_O heuristics, with automatic
//!   CEG_OCR switching for queries with large cycles (Sections 4, 6.2),
//! * [`MolpEstimator`] / [`CbsEstimator`] — the pessimistic bounds
//!   (Section 5),
//! * [`SketchedOptimistic`] / [`SketchedMolp`] — bound-sketch variants
//!   (Section 6.3),
//! * [`CsEstimator`] — Characteristic Sets (Section 6.4),
//! * [`SumRdfEstimator`] — SumRDF-style summary estimation (Section 6.4),
//! * [`WanderJoinEstimator`] — the sampling baseline (Section 6.5),
//! * [`Rdf3xDefaultEstimator`] — the RDF-3X-style default used as the
//!   plan-quality baseline (Section 6.6),
//! * [`pstar_estimate`] — the P* oracle (Section 6.2.3).
//!
//! # Example
//!
//! ```
//! use ceg_graph::GraphBuilder;
//! use ceg_query::templates;
//! use ceg_catalog::MarkovTable;
//! use ceg_estimators::{CardinalityEstimator, OptimisticEstimator};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 0);
//! b.add_edge(1, 2, 1);
//! b.add_edge(1, 3, 1);
//! let graph = b.build();
//!
//! let query = templates::path(2, &[0, 1]);
//! let table = MarkovTable::build_for_query(&graph, &query, 2);
//! let mut est = OptimisticEstimator::recommended(&table); // max-hop-max
//! assert_eq!(est.estimate(&query), Some(2.0)); // exact: query fits in table
//! ```

pub mod baselines;
pub mod jsub;
pub mod max_entropy;
pub mod optimistic;
pub mod pessimistic;
pub mod traits;
pub mod wander_join;

pub use baselines::{CsEstimator, Rdf3xDefaultEstimator, SumRdfEstimator};
pub use jsub::JsubEstimator;
pub use max_entropy::MaxEntEstimator;
pub use optimistic::{pstar_estimate, OptimisticEstimator, SketchedOptimistic};
pub use pessimistic::{CbsEstimator, MolpEstimator, SketchedMolp};
pub use traits::CardinalityEstimator;
pub use wander_join::WanderJoinEstimator;
