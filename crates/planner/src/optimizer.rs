//! System-R-style dynamic-programming join optimizer.
//!
//! Plans are binary join trees over the query's edges (relations); the DP
//! explores every connected edge-subset and splits it into two connected
//! halves. The cost model is `C_out`: the sum of estimated cardinalities
//! of all intermediate (non-leaf) results — the metric reference \[12\] of
//! the paper showed rewards accurate estimators.

use ceg_estimators::CardinalityEstimator;
use ceg_graph::FxHashMap;
use ceg_query::{EdgeMask, QueryGraph};

/// A join plan over the query's relations.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan of one query edge (a base relation occurrence).
    Scan(usize),
    /// Hash join of two sub-plans.
    Join(Box<Plan>, Box<Plan>),
}

impl Plan {
    /// The edge subset a plan covers.
    pub fn mask(&self) -> EdgeMask {
        match self {
            Plan::Scan(i) => EdgeMask::single(*i),
            Plan::Join(l, r) => l.mask().union(r.mask()),
        }
    }

    /// Number of joins in the plan.
    pub fn num_joins(&self) -> usize {
        match self {
            Plan::Scan(_) => 0,
            Plan::Join(l, r) => 1 + l.num_joins() + r.num_joins(),
        }
    }

    /// Render as a parenthesized expression, e.g. `((e0 ⋈ e1) ⋈ e2)`.
    pub fn render(&self) -> String {
        match self {
            Plan::Scan(i) => format!("e{i}"),
            Plan::Join(l, r) => format!("({} ⋈ {})", l.render(), r.render()),
        }
    }
}

/// Optimize `query` with cardinalities from `est`. The estimator is asked
/// once per connected sub-query (estimates are memoized here). Returns
/// the plan and its estimated `C_out` cost.
pub fn optimize(query: &QueryGraph, est: &mut dyn CardinalityEstimator) -> (Plan, f64) {
    let subsets = query.connected_subsets();
    let mut card: FxHashMap<EdgeMask, f64> = FxHashMap::default();
    for &mask in &subsets {
        let (sub, _) = query.subquery(mask);
        let e = est.estimate(&sub).unwrap_or(f64::INFINITY).max(0.0);
        card.insert(mask, e);
    }

    // DP in increasing subset-size order (subsets are already sorted).
    let mut best: FxHashMap<EdgeMask, (f64, Plan)> = FxHashMap::default();
    for &mask in &subsets {
        if mask.len() == 1 {
            let i = mask.iter().next().unwrap();
            best.insert(mask, (0.0, Plan::Scan(i)));
            continue;
        }
        let mut cheapest: Option<(f64, Plan)> = None;
        // enumerate proper submask splits (l, mask \ l), both connected
        let bits = mask.bits();
        let mut l = (bits - 1) & bits;
        while l != 0 {
            let lm = EdgeMask::from_bits(l);
            let rm = mask.difference(lm);
            // consider each unordered split once
            if lm.bits() > rm.bits() {
                if let (Some((cl, pl)), Some((cr, pr))) = (best.get(&lm), best.get(&rm)) {
                    let cost = cl + cr + card[&mask];
                    if cheapest.as_ref().is_none_or(|(c, _)| cost < *c) {
                        cheapest =
                            Some((cost, Plan::Join(Box::new(pl.clone()), Box::new(pr.clone()))));
                    }
                }
            }
            l = (l - 1) & bits;
        }
        if let Some(c) = cheapest {
            best.insert(mask, c);
        }
    }
    let full = query.full_mask();
    let (cost, plan) = best
        .remove(&full)
        .expect("connected query must have a plan");
    (plan, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_query::templates;

    /// Estimator with fixed per-size estimates to steer plan shape.
    struct BySize(Vec<f64>);
    impl CardinalityEstimator for BySize {
        fn name(&self) -> String {
            "by-size".into()
        }
        fn estimate(&mut self, q: &QueryGraph) -> Option<f64> {
            Some(self.0[q.num_edges()])
        }
    }

    /// Estimator that penalizes plans containing a specific label.
    struct PenalizeLabel(u16);
    impl CardinalityEstimator for PenalizeLabel {
        fn name(&self) -> String {
            "penalize".into()
        }
        fn estimate(&mut self, q: &QueryGraph) -> Option<f64> {
            let has = q.edges().iter().any(|e| e.label == self.0);
            Some(if has { 1e6 } else { 1.0 })
        }
    }

    #[test]
    fn plan_covers_all_edges() {
        let q = templates::path(3, &[0, 1, 2]);
        let mut est = BySize(vec![1.0; 10]);
        let (plan, cost) = optimize(&q, &mut est);
        assert_eq!(plan.mask(), q.full_mask());
        assert_eq!(plan.num_joins(), 2);
        assert!(cost.is_finite());
    }

    #[test]
    fn optimizer_delays_expensive_relations() {
        // joins involving label 2 are estimated enormous: the optimizer
        // should join e0 ⋈ e1 first and bring e2 in last
        let q = templates::path(3, &[0, 1, 2]);
        let mut est = PenalizeLabel(2);
        let (plan, _) = optimize(&q, &mut est);
        match &plan {
            Plan::Join(l, _r) => {
                // the first (deeper) join must avoid edge 2
                let inner = l.mask().union(EdgeMask::empty());
                assert!(
                    !inner.contains(2) || l.num_joins() == 0,
                    "plan {} joins the expensive edge early",
                    plan.render()
                );
            }
            Plan::Scan(_) => panic!("expected a join"),
        }
    }

    #[test]
    fn render_is_readable() {
        let q = templates::path(2, &[0, 1]);
        let mut est = BySize(vec![1.0; 10]);
        let (plan, _) = optimize(&q, &mut est);
        let s = plan.render();
        assert!(s.contains('⋈'));
        assert!(s.contains("e0") && s.contains("e1"));
    }

    #[test]
    fn star_plans_exist_for_all_shapes() {
        for q in [
            templates::star(4, &[0, 1, 2, 3]),
            templates::cycle(4, &[0, 1, 2, 3]),
            templates::q5f(&[0, 1, 2, 3, 4]),
        ] {
            let mut est = BySize(vec![2.0; 10]);
            let (plan, _) = optimize(&q, &mut est);
            assert_eq!(plan.mask(), q.full_mask());
        }
    }
}

/// Left-deep-only variant of [`optimize`]: plans are chains whose right
/// input is always a base relation — the search space of many production
/// optimizers (and of RDF-3X's DP table in practice). Useful for
/// quantifying how much bushy plans buy on these workloads.
pub fn optimize_left_deep(query: &QueryGraph, est: &mut dyn CardinalityEstimator) -> (Plan, f64) {
    let subsets = query.connected_subsets();
    let mut card: FxHashMap<EdgeMask, f64> = FxHashMap::default();
    for &mask in &subsets {
        let (sub, _) = query.subquery(mask);
        card.insert(mask, est.estimate(&sub).unwrap_or(f64::INFINITY).max(0.0));
    }
    let mut best: FxHashMap<EdgeMask, (f64, Plan)> = FxHashMap::default();
    for &mask in &subsets {
        if mask.len() == 1 {
            let i = mask.iter().next().unwrap();
            best.insert(mask, (0.0, Plan::Scan(i)));
            continue;
        }
        let mut cheapest: Option<(f64, Plan)> = None;
        for i in mask.iter() {
            let rest = mask.remove(i);
            let Some((c, p)) = best.get(&rest) else {
                continue;
            };
            let cost = c + card[&mask];
            if cheapest.as_ref().is_none_or(|(x, _)| cost < *x) {
                cheapest = Some((
                    cost,
                    Plan::Join(Box::new(p.clone()), Box::new(Plan::Scan(i))),
                ));
            }
        }
        if let Some(c) = cheapest {
            best.insert(mask, c);
        }
    }
    best.remove(&query.full_mask())
        .map(|(c, p)| (p, c))
        .expect("connected query must have a left-deep plan")
}

/// Greedy operator ordering (GOO): repeatedly join the pair of fragments
/// with the smallest estimated result. Linear in the number of joins;
/// the classic cheap heuristic baseline.
pub fn optimize_greedy(query: &QueryGraph, est: &mut dyn CardinalityEstimator) -> (Plan, f64) {
    let mut fragments: Vec<(EdgeMask, Plan)> = (0..query.num_edges())
        .map(|i| (EdgeMask::single(i), Plan::Scan(i)))
        .collect();
    let mut cache: FxHashMap<EdgeMask, f64> = FxHashMap::default();
    let mut estimate = |mask: EdgeMask, est: &mut dyn CardinalityEstimator| -> f64 {
        *cache.entry(mask).or_insert_with(|| {
            let (sub, _) = query.subquery(mask);
            est.estimate(&sub).unwrap_or(f64::INFINITY).max(0.0)
        })
    };
    let mut total_cost = 0.0f64;
    while fragments.len() > 1 {
        let mut best: Option<(f64, usize, usize)> = None;
        for a in 0..fragments.len() {
            for b in (a + 1)..fragments.len() {
                let merged = fragments[a].0.union(fragments[b].0);
                if !query.is_connected_mask(merged) {
                    continue;
                }
                let c = estimate(merged, est);
                if best.is_none_or(|(x, _, _)| c < x) {
                    best = Some((c, a, b));
                }
            }
        }
        let (c, a, b) = best.expect("connected query always has a joinable pair");
        total_cost += c;
        let (mb, pb) = fragments.swap_remove(b);
        let (ma, pa) = fragments.swap_remove(if a < fragments.len() { a } else { b });
        fragments.push((ma.union(mb), Plan::Join(Box::new(pa), Box::new(pb))));
    }
    let (_, plan) = fragments.pop().unwrap();
    (plan, total_cost)
}

#[cfg(test)]
mod variant_tests {
    use super::*;
    use ceg_query::templates;

    struct Unit;
    impl CardinalityEstimator for Unit {
        fn name(&self) -> String {
            "unit".into()
        }
        fn estimate(&mut self, q: &QueryGraph) -> Option<f64> {
            Some(q.num_edges() as f64)
        }
    }

    #[test]
    fn left_deep_plan_shape() {
        let q = templates::path(4, &[0, 1, 2, 3]);
        let (plan, _) = optimize_left_deep(&q, &mut Unit);
        // right child of every join is a scan
        fn check(p: &Plan) {
            if let Plan::Join(l, r) = p {
                assert!(matches!(**r, Plan::Scan(_)), "right child must be a scan");
                check(l);
            }
        }
        check(&plan);
        assert_eq!(plan.mask(), q.full_mask());
    }

    #[test]
    fn greedy_covers_query() {
        for q in [
            templates::path(3, &[0, 1, 2]),
            templates::star(4, &[0, 1, 2, 3]),
            templates::cycle(4, &[0, 1, 2, 3]),
        ] {
            let (plan, cost) = optimize_greedy(&q, &mut Unit);
            assert_eq!(plan.mask(), q.full_mask());
            assert!(cost.is_finite());
        }
    }

    #[test]
    fn bushy_dp_never_costs_more_than_left_deep() {
        let q = templates::q5f(&[0, 1, 2, 3, 4]);
        let (_, bushy) = optimize(&q, &mut Unit);
        let (_, ld) = optimize_left_deep(&q, &mut Unit);
        assert!(bushy <= ld + 1e-9, "bushy {bushy} > left-deep {ld}");
    }

    #[test]
    fn greedy_never_beats_dp() {
        let q = templates::tree_depth(5, 3, &[0, 1, 2, 3, 4]);
        let (_, dp) = optimize(&q, &mut Unit);
        let (_, greedy) = optimize_greedy(&q, &mut Unit);
        assert!(dp <= greedy + 1e-9, "dp {dp} > greedy {greedy}");
    }
}
