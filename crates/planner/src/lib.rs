//! # ceg-planner
//!
//! Join-order optimization substrate for the plan-quality experiment
//! (Section 6.6). The paper injects each estimator's cardinalities into
//! RDF-3X's dynamic-programming join optimizer and compares plan run
//! times; we reproduce the setup with
//!
//! * [`optimizer`] — a System-R-style DP optimizer over connected
//!   sub-queries whose cost model (`C_out`) sums *estimated* intermediate
//!   cardinalities supplied by any [`ceg_estimators::CardinalityEstimator`],
//! * [`executor`] — a hash-join pipeline that executes the chosen plan and
//!   reports *actual* intermediate tuple counts and wall time.

pub mod executor;
pub mod optimizer;

pub use executor::{execute_plan, ExecStats};
pub use optimizer::{optimize, optimize_greedy, optimize_left_deep, Plan};
