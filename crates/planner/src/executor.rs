//! Hash-join plan execution.
//!
//! Executes a [`Plan`] bottom-up with in-memory hash joins, reporting the
//! *actual* intermediate result sizes and wall time — the plan-quality
//! metrics of Section 6.6. A row budget aborts pathological plans (the
//! whole point of the experiment is that bad estimates produce them).

use std::time::{Duration, Instant};

use ceg_graph::{FxHashMap, LabeledGraph, VertexId};
use ceg_query::{QueryGraph, VarId};

use crate::optimizer::Plan;

/// Outcome of executing one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecStats {
    /// Sum of intermediate (non-root, non-leaf) result sizes.
    pub intermediate_tuples: u64,
    /// Final output size.
    pub output: u64,
    pub wall: Duration,
}

/// A materialized intermediate relation: a schema of query variables and
/// rows of bound vertices.
struct Table {
    schema: Vec<VarId>,
    rows: Vec<Vec<VertexId>>,
}

/// Execute `plan` over `graph`; `None` if any intermediate result exceeds
/// `row_budget` rows.
pub fn execute_plan(
    graph: &LabeledGraph,
    query: &QueryGraph,
    plan: &Plan,
    row_budget: usize,
) -> Option<ExecStats> {
    let t0 = Instant::now();
    let mut intermediate = 0u64;
    let root = run(graph, query, plan, row_budget, &mut intermediate)?;
    // the root's size is the output, not an intermediate
    intermediate -= root.rows.len() as u64;
    Some(ExecStats {
        intermediate_tuples: intermediate,
        output: root.rows.len() as u64,
        wall: t0.elapsed(),
    })
}

fn run(
    graph: &LabeledGraph,
    query: &QueryGraph,
    plan: &Plan,
    row_budget: usize,
    intermediate: &mut u64,
) -> Option<Table> {
    match plan {
        Plan::Scan(i) => {
            let e = query.edge(*i);
            let rows: Vec<Vec<VertexId>> = if e.src == e.dst {
                graph
                    .edges(e.label)
                    .filter(|(s, d)| s == d)
                    .map(|(s, _)| vec![s])
                    .collect()
            } else {
                graph.edges(e.label).map(|(s, d)| vec![s, d]).collect()
            };
            let schema = if e.src == e.dst {
                vec![e.src]
            } else {
                vec![e.src, e.dst]
            };
            Some(Table { schema, rows })
        }
        Plan::Join(l, r) => {
            let lt = run(graph, query, l, row_budget, intermediate)?;
            let rt = run(graph, query, r, row_budget, intermediate)?;
            let joined = hash_join(&lt, &rt, row_budget)?;
            *intermediate += joined.rows.len() as u64;
            Some(joined)
        }
    }
}

fn hash_join(l: &Table, r: &Table, row_budget: usize) -> Option<Table> {
    // shared variables and their column positions
    let shared: Vec<(usize, usize)> = l
        .schema
        .iter()
        .enumerate()
        .filter_map(|(li, v)| r.schema.iter().position(|x| x == v).map(|ri| (li, ri)))
        .collect();
    // output schema: l's columns then r's non-shared columns
    let mut schema = l.schema.clone();
    let extra_cols: Vec<usize> = (0..r.schema.len())
        .filter(|&ri| !shared.iter().any(|&(_, sri)| sri == ri))
        .collect();
    for &ri in &extra_cols {
        schema.push(r.schema[ri]);
    }

    // build on the smaller side
    let (build, probe, build_is_left) = if l.rows.len() <= r.rows.len() {
        (l, r, true)
    } else {
        (r, l, false)
    };
    let key_of = |row: &[VertexId], is_left: bool| -> Vec<VertexId> {
        shared
            .iter()
            .map(|&(li, ri)| row[if is_left { li } else { ri }])
            .collect()
    };
    let mut index: FxHashMap<Vec<VertexId>, Vec<usize>> = FxHashMap::default();
    for (i, row) in build.rows.iter().enumerate() {
        index.entry(key_of(row, build_is_left)).or_default().push(i);
    }

    let mut rows: Vec<Vec<VertexId>> = Vec::new();
    for prow in &probe.rows {
        let key = key_of(prow, !build_is_left);
        let Some(matches) = index.get(&key) else {
            continue;
        };
        for &bi in matches {
            let brow = &build.rows[bi];
            let (lrow, rrow) = if build_is_left {
                (brow, prow)
            } else {
                (prow, brow)
            };
            let mut out = lrow.clone();
            for &ri in &extra_cols {
                out.push(rrow[ri]);
            }
            rows.push(out);
            if rows.len() > row_budget {
                return None;
            }
        }
    }
    Some(Table { schema, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{optimize, Plan};
    use ceg_estimators::CardinalityEstimator;
    use ceg_exec::count;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    struct Exact<'a>(&'a LabeledGraph);
    impl CardinalityEstimator for Exact<'_> {
        fn name(&self) -> String {
            "exact".into()
        }
        fn estimate(&mut self, q: &QueryGraph) -> Option<f64> {
            Some(count(self.0, q) as f64)
        }
    }

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(20);
        for i in 0..6 {
            b.add_edge(i, 6 + i, 0);
            b.add_edge(6 + i, 12 + i % 4, 1);
            b.add_edge(12 + i % 4, 16 + i % 2, 2);
        }
        b.build()
    }

    #[test]
    fn output_matches_executor_count() {
        let g = toy();
        for q in [
            templates::path(2, &[0, 1]),
            templates::path(3, &[0, 1, 2]),
            templates::star(2, &[0, 0]),
            templates::cycle(3, &[0, 1, 2]),
        ] {
            let mut est = Exact(&g);
            let (plan, _) = optimize(&q, &mut est);
            let stats = execute_plan(&g, &q, &plan, 1 << 24).unwrap();
            assert_eq!(stats.output, count(&g, &q), "on {q}");
        }
    }

    #[test]
    fn any_plan_shape_gives_same_output() {
        // left-deep vs the optimizer's choice must agree on output size
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let left_deep = Plan::Join(
            Box::new(Plan::Join(Box::new(Plan::Scan(0)), Box::new(Plan::Scan(1)))),
            Box::new(Plan::Scan(2)),
        );
        let right_deep = Plan::Join(
            Box::new(Plan::Scan(0)),
            Box::new(Plan::Join(Box::new(Plan::Scan(1)), Box::new(Plan::Scan(2)))),
        );
        let a = execute_plan(&g, &q, &left_deep, 1 << 24).unwrap();
        let b = execute_plan(&g, &q, &right_deep, 1 << 24).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.output, count(&g, &q));
    }

    #[test]
    fn budget_aborts_huge_joins() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let (plan, _) = optimize(&q, &mut Exact(&g));
        assert_eq!(execute_plan(&g, &q, &plan, 1), None);
    }

    #[test]
    fn intermediate_counts_exclude_root() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let (plan, _) = optimize(&q, &mut Exact(&g));
        let stats = execute_plan(&g, &q, &plan, 1 << 24).unwrap();
        // a single join has no intermediates
        assert_eq!(stats.intermediate_tuples, 0);
    }

    #[test]
    fn better_estimates_give_no_worse_intermediates() {
        // exact estimates should produce the optimal C_out plan; a
        // deliberately inverted estimator can only do as bad or worse
        struct Inverted<'a>(&'a LabeledGraph);
        impl CardinalityEstimator for Inverted<'_> {
            fn name(&self) -> String {
                "inverted".into()
            }
            fn estimate(&mut self, q: &QueryGraph) -> Option<f64> {
                Some(1.0 / (1.0 + count(self.0, q) as f64))
            }
        }
        let g = toy();
        let q = templates::q5f(&[0, 1, 2, 2, 2]);
        let (good_plan, _) = optimize(&q, &mut Exact(&g));
        let (bad_plan, _) = optimize(&q, &mut Inverted(&g));
        let good = execute_plan(&g, &q, &good_plan, 1 << 24).unwrap();
        let bad = execute_plan(&g, &q, &bad_plan, 1 << 24).unwrap();
        assert!(good.intermediate_tuples <= bad.intermediate_tuples);
        assert_eq!(good.output, bad.output);
    }
}
