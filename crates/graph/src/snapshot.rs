//! Versioned binary snapshot framing and the graph section codec.
//!
//! A `.cegsnap` file is a sequence of checksummed sections behind a fixed
//! header, designed so a restart can skip text parsing and CSR
//! construction entirely — the persisted bytes *are* the in-memory
//! arrays:
//!
//! ```text
//! magic   8 bytes  b"CEGSNAP\0"
//! version u32 LE   format version (currently 1)
//! section*:
//!   tag      4 bytes   b"GRPH" | b"MRKV" | b"EPOC" | future tags
//!   len      u64 LE    payload length in bytes
//!   payload  len bytes
//!   checksum u64 LE    length-seeded FxHash64 of the payload
//! ```
//!
//! Compatibility rules: an unknown *tag* is skipped (a newer writer can
//! add sections without breaking older readers), an unknown *version* is
//! rejected (the section payloads themselves may have changed shape).
//! Every decode error — bad magic, truncation, checksum mismatch, a
//! structurally invalid payload — surfaces as `io::ErrorKind::InvalidData`
//! (or `UnexpectedEof`), never as a panic: snapshot files cross process
//! boundaries and must be treated as untrusted input.
//!
//! This module owns the container plus the `GRPH`/`EPOC` payload codecs;
//! `ceg-catalog::io` adds the `MRKV` codec and the combined
//! graph+catalog+epoch snapshot used by the service.

use std::io::{self, Read, Write};

use crate::csr::Csr;
use crate::{LabeledGraph, VertexId};

/// File magic: identifies a `.cegsnap` container.
pub const MAGIC: [u8; 8] = *b"CEGSNAP\0";

/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Section tag: the rebased CSR relations of a [`LabeledGraph`].
pub const TAG_GRAPH: [u8; 4] = *b"GRPH";

/// Section tag: a Markov catalog (codec lives in `ceg-catalog::io`).
pub const TAG_MARKOV: [u8; 4] = *b"MRKV";

/// Section tag: the dataset epoch (a bare `u64`).
pub const TAG_EPOCH: [u8; 4] = *b"EPOC";

/// Section checksum: the workspace's word-at-a-time FxHash over the
/// payload, seeded with the payload length so a truncated-but-zero tail
/// cannot collide. Cheap (≈8 bytes/multiply, an order of magnitude
/// faster than byte-serial FNV — it sits on the restore hot path) and
/// sufficient to catch the accidental corruption (truncation, bit rot,
/// partial writes) snapshots are exposed to. Not a cryptographic
/// integrity check.
pub fn section_checksum(bytes: &[u8]) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::hash::FxHasher::default();
    h.write_u64(bytes.len() as u64);
    h.write(bytes);
    h.finish()
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Write a file atomically: `fill` produces the bytes, which land in a
/// unique temp file next to `path`, are synced to disk, and are renamed
/// over `path` only once complete. A crash, a full disk, or a concurrent
/// writer therefore can never leave a truncated or interleaved file at
/// `path` — at worst the old file survives untouched (plus a stray
/// `.tmp.*` sibling from a hard crash, which [`sweep_orphan_temps`]
/// deletes on the next startup). Snapshots are recovery artifacts;
/// overwriting the only good copy in place would let the durability
/// feature destroy the very state it exists to protect.
pub fn atomic_write(
    path: &std::path::Path,
    fill: impl FnOnce(&mut Vec<u8>) -> io::Result<()>,
) -> io::Result<()> {
    atomic_write_with(&crate::vfs::OsStorage, path, fill)
}

/// [`atomic_write`] through an explicit [`crate::vfs::Storage`] — the
/// fault-injection seam: tests swap in a
/// [`crate::vfs::FaultStorage`] to crash the write at every step.
pub fn atomic_write_with(
    storage: &dyn crate::vfs::Storage,
    path: &std::path::Path,
    fill: impl FnOnce(&mut Vec<u8>) -> io::Result<()>,
) -> io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "snapshot".into());
    name.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(name);
    let result = (|| {
        let mut bytes = Vec::new();
        fill(&mut bytes)?;
        let mut f = storage.create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync()?;
        storage.rename(&tmp, path)?;
        // The rename's directory entry must reach disk too, or a power
        // loss right after a successful return could resurrect the old
        // file — an ack'd snapshot has to actually be durable.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            storage.sync_dir(dir)?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = storage.remove(&tmp);
    }
    result
}

/// Delete orphaned `.cegsnap.tmp.*` / `.cegwal.tmp.*` siblings that a
/// hard crash mid-[`atomic_write`] left behind in a dataset directory.
/// Returns the paths removed. Call this when the directory is first
/// opened, **before** any writer is live — a temp file in use by a
/// concurrent writer must never be swept.
pub fn sweep_orphan_temps(
    storage: &dyn crate::vfs::Storage,
    dir: &std::path::Path,
) -> io::Result<Vec<std::path::PathBuf>> {
    let mut removed = Vec::new();
    for path in storage.list(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.contains(".cegsnap.tmp.") || name.contains(".cegwal.tmp.") {
            storage.remove(&path)?;
            removed.push(path);
        }
    }
    Ok(removed)
}

/// Writes the container header, then checksummed sections.
#[derive(Debug)]
pub struct SnapshotWriter<W: Write> {
    inner: W,
}

impl<W: Write> SnapshotWriter<W> {
    /// Write the magic + version header and return the section writer.
    pub fn new(mut inner: W) -> io::Result<Self> {
        inner.write_all(&MAGIC)?;
        inner.write_all(&FORMAT_VERSION.to_le_bytes())?;
        Ok(SnapshotWriter { inner })
    }

    /// Append one checksummed section.
    pub fn write_section(&mut self, tag: [u8; 4], payload: &[u8]) -> io::Result<()> {
        self.inner.write_all(&tag)?;
        self.inner
            .write_all(&(payload.len() as u64).to_le_bytes())?;
        self.inner.write_all(payload)?;
        self.inner
            .write_all(&section_checksum(payload).to_le_bytes())?;
        Ok(())
    }

    /// Flush and hand back the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Reads the container header, then sections one at a time.
#[derive(Debug)]
pub struct SnapshotReader<R: Read> {
    inner: R,
}

impl<R: Read> SnapshotReader<R> {
    /// Check the magic + version header. A version this build does not
    /// know is an error (payload layouts may differ), not a best-effort
    /// read.
    pub fn new(mut inner: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        inner
            .read_exact(&mut magic)
            .map_err(|_| bad("not a snapshot: file shorter than the magic"))?;
        if magic != MAGIC {
            return Err(bad("not a snapshot: bad magic"));
        }
        let mut version = [0u8; 4];
        inner
            .read_exact(&mut version)
            .map_err(|_| bad("truncated snapshot: missing format version"))?;
        let version = u32::from_le_bytes(version);
        if version != FORMAT_VERSION {
            return Err(bad(format!(
                "snapshot format version {version} is not supported (this build reads {FORMAT_VERSION})"
            )));
        }
        Ok(SnapshotReader { inner })
    }

    /// Read the next section, verifying its checksum. `Ok(None)` at a
    /// clean end of file; truncation anywhere inside a section is an
    /// error. The payload buffer grows with the bytes actually present,
    /// so a corrupt length field cannot force a giant allocation.
    pub fn next_section(&mut self) -> io::Result<Option<([u8; 4], Vec<u8>)>> {
        let mut tag = [0u8; 4];
        match self.inner.read(&mut tag)? {
            0 => return Ok(None),
            4 => {}
            n => {
                // A short first read may still be a valid tag split across
                // reads; finish it, treating EOF as truncation.
                self.inner
                    .read_exact(&mut tag[n..])
                    .map_err(|_| bad("truncated snapshot: partial section tag"))?;
            }
        }
        let mut len = [0u8; 8];
        self.inner
            .read_exact(&mut len)
            .map_err(|_| bad("truncated snapshot: missing section length"))?;
        let len = u64::from_le_bytes(len);
        let mut payload = Vec::new();
        let got = (&mut self.inner).take(len).read_to_end(&mut payload)?;
        if got as u64 != len {
            return Err(bad(format!(
                "truncated snapshot: section {} claims {len} bytes, file holds {got}",
                String::from_utf8_lossy(&tag)
            )));
        }
        let mut checksum = [0u8; 8];
        self.inner
            .read_exact(&mut checksum)
            .map_err(|_| bad("truncated snapshot: missing section checksum"))?;
        if u64::from_le_bytes(checksum) != section_checksum(&payload) {
            return Err(bad(format!(
                "snapshot section {} failed its checksum",
                String::from_utf8_lossy(&tag)
            )));
        }
        Ok(Some((tag, payload)))
    }
}

/// Little-endian cursor over a section payload. Every read is
/// bounds-checked against the bytes actually present, so decoding a
/// corrupt payload errors instead of panicking or over-allocating.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(bad(format!(
                "truncated payload: {what} needs {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self, what: &str) -> io::Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u16(&mut self, what: &str) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    pub fn u64(&mut self, what: &str) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A `u64` that must fit a (bounded) in-memory count.
    pub fn count(&mut self, what: &str, max: usize) -> io::Result<usize> {
        let n = self.u64(what)?;
        if n > max as u64 {
            return Err(bad(format!("{what} {n} exceeds the limit of {max}")));
        }
        Ok(n as usize)
    }

    /// Read `n` little-endian `u32`s. `n` is multiplied with overflow
    /// checking — a hostile count cannot wrap into a short read (or a
    /// debug-build panic).
    pub fn u32_array(&mut self, n: usize, what: &str) -> io::Result<Vec<u32>> {
        let bytes = n
            .checked_mul(4)
            .ok_or_else(|| bad(format!("{what}: element count {n} overflows")))?;
        let raw = self.take(bytes, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Append little-endian integers to a payload buffer.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encode a graph as a `GRPH` payload: the raw CSR arrays of every
/// relation in both directions. A relation may span a smaller domain than
/// the graph ([`LabeledGraph::rebase`] shares untouched relations at
/// their original size), so each CSR records its own offset count.
///
/// ```text
/// u64 num_vertices, u64 num_labels
/// per label: fwd CSR, bwd CSR
/// CSR: u64 num_offsets, u64 num_targets, offsets u32*, targets u32*
/// ```
pub fn encode_graph(graph: &LabeledGraph) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, graph.num_vertices() as u64);
    put_u64(&mut buf, graph.num_labels() as u64);
    for (fwd, bwd) in graph.csr_pairs() {
        for csr in [fwd, bwd] {
            let (offsets, targets) = csr.raw_parts();
            put_u64(&mut buf, offsets.len() as u64);
            put_u64(&mut buf, targets.len() as u64);
            for &o in offsets {
                put_u32(&mut buf, o);
            }
            for &t in targets {
                put_u32(&mut buf, t);
            }
        }
    }
    buf
}

/// Largest label count a `GRPH` payload may declare (`LabelId` is `u16`).
const MAX_LABELS: usize = u16::MAX as usize + 1;

/// Decode a `GRPH` payload, validating every structural invariant
/// (bounded domain, monotone offsets, sorted rows, in-range targets) so a
/// corrupt or hostile snapshot is rejected with an error.
pub fn decode_graph(payload: &[u8]) -> io::Result<LabeledGraph> {
    let mut r = PayloadReader::new(payload);
    let num_vertices = r.count("num_vertices", VertexId::MAX as usize + 1)?;
    let num_labels = r.count("num_labels", MAX_LABELS)?;
    let mut pairs = Vec::with_capacity(num_labels);
    for label in 0..num_labels {
        let mut directions = Vec::with_capacity(2);
        for dir in ["forward", "backward"] {
            let what = format!("label {label} {dir} CSR");
            let num_offsets = r.count(&what, num_vertices + 1)?;
            // Bound the declared target count by the bytes actually
            // remaining (4 per entry) — a hostile count fails here, it
            // never reaches an allocation or an overflowing multiply.
            let num_targets = r.count(&what, r.remaining() / 4)?;
            let offsets = r.u32_array(num_offsets, &what)?;
            let targets = r.u32_array(num_targets, &what)?;
            if targets.iter().any(|&t| t as usize >= num_vertices) {
                return Err(bad(format!("{what}: target vertex out of range")));
            }
            directions.push(
                Csr::from_raw_parts(offsets, targets).map_err(|e| bad(format!("{what}: {e}")))?,
            );
        }
        let bwd = directions.pop().unwrap();
        let fwd = directions.pop().unwrap();
        // The backward index must be exactly the transpose of the
        // forward one. Without this, an internally inconsistent (but
        // checksum-valid) file would load and silently answer wrong
        // counts whenever an estimator walks the backward direction.
        if !is_transpose(&fwd, &bwd) {
            return Err(bad(format!(
                "label {label}: backward index is not the transpose of the forward index"
            )));
        }
        pairs.push((fwd, bwd));
    }
    if !r.is_exhausted() {
        return Err(bad(format!(
            "graph payload has {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(LabeledGraph::from_csr_pairs(num_vertices, pairs))
}

/// Exact transpose check in O(V + E): rebuild the expected backward
/// arrays from the forward CSR with a counting pass (iterating sources
/// in ascending order appends each reverse row already sorted — no
/// comparison sort) and compare them to the stored ones byte-for-byte.
/// An order of magnitude cheaper than per-edge binary searches, which
/// would eat into the snapshot-restore win this module exists for.
fn is_transpose(fwd: &Csr, bwd: &Csr) -> bool {
    if fwd.num_edges() != bwd.num_edges() {
        return false;
    }
    if fwd.num_edges() == 0 {
        // Both empty: any offset shapes (including the offset-less
        // default CSR) represent the same empty relation.
        return true;
    }
    let n = bwd.num_vertices();
    let (b_offsets, b_targets) = bwd.raw_parts();
    let mut offsets = vec![0u32; n + 1];
    for (_, dst) in fwd.iter_edges() {
        if dst as usize >= n {
            return false; // bwd's domain cannot hold this reverse entry
        }
        offsets[dst as usize + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    if offsets != b_offsets {
        return false;
    }
    let mut targets = vec![0 as VertexId; fwd.num_edges()];
    let mut cursor = offsets;
    for (src, dst) in fwd.iter_edges() {
        let c = &mut cursor[dst as usize];
        targets[*c as usize] = src;
        *c += 1;
    }
    targets == b_targets
}

/// Encode an `EPOC` payload.
pub fn encode_epoch(epoch: u64) -> Vec<u8> {
    epoch.to_le_bytes().to_vec()
}

/// Decode an `EPOC` payload.
pub fn decode_epoch(payload: &[u8]) -> io::Result<u64> {
    let mut r = PayloadReader::new(payload);
    let epoch = r.u64("epoch")?;
    if !r.is_exhausted() {
        return Err(bad("epoch payload has trailing bytes"));
    }
    Ok(epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, GraphDelta};

    fn sample() -> LabeledGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 2, 0);
        b.add_edge(2, 3, 1);
        b.add_edge(4, 0, 2);
        b.build()
    }

    fn graphs_equal(a: &LabeledGraph, b: &LabeledGraph) -> bool {
        a.num_vertices() == b.num_vertices()
            && a.num_labels() == b.num_labels()
            && a.num_edges() == b.num_edges()
            && a.all_edges().all(|e| b.has_edge(e.src, e.dst, e.label))
    }

    #[test]
    fn graph_payload_roundtrips() {
        let g = sample();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert!(graphs_equal(&g, &g2));
        // The decoded CSRs carry correct cached aggregates.
        assert_eq!(g2.max_out_degree(0), g.max_out_degree(0));
        assert_eq!(g2.distinct_sources(0), g.distinct_sources(0));
        assert_eq!(g2.in_neighbors(0, 2), g.in_neighbors(0, 2));
    }

    #[test]
    fn rebased_graph_with_mixed_domains_roundtrips() {
        // Rebase grows the domain but shares the untouched label-1
        // relation at its old 5-vertex domain; the codec must preserve
        // that shape.
        let g = sample();
        let mut d = GraphDelta::new();
        d.add_edge(6, 1, 0);
        let r = g.rebase(&d);
        assert_eq!(r.num_vertices(), 7);
        let r2 = decode_graph(&encode_graph(&r)).unwrap();
        assert!(graphs_equal(&r, &r2));
        assert_eq!(r2.out_neighbors(6, 0), &[1]);
        assert_eq!(r2.out_neighbors(2, 1), &[3]);
    }

    #[test]
    fn gap_labels_roundtrip_as_empty_relations() {
        // A delta that introduces label 4 leaves label 3 as a default
        // (offset-less) CSR; the codec must preserve that legally.
        let g = sample();
        let mut d = GraphDelta::new();
        d.add_edge(0, 1, 4);
        let r = g.rebase(&d);
        assert_eq!(r.num_labels(), 5);
        assert_eq!(r.label_count(3), 0);
        let r2 = decode_graph(&encode_graph(&r)).unwrap();
        assert!(graphs_equal(&r, &r2));
        assert_eq!(r2.label_count(3), 0);
        assert!(r2.has_edge(0, 1, 4));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphBuilder::new(0).build();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.num_vertices(), 0);
        assert_eq!(g2.num_labels(), 0);
        assert_eq!(g2.num_edges(), 0);
    }

    #[test]
    fn sections_roundtrip_and_unknown_tags_skip() {
        let mut file = Vec::new();
        let mut w = SnapshotWriter::new(&mut file).unwrap();
        w.write_section(*b"XTRA", b"future section").unwrap();
        w.write_section(TAG_EPOCH, &encode_epoch(42)).unwrap();
        w.finish().unwrap();

        let mut r = SnapshotReader::new(&file[..]).unwrap();
        let (tag, payload) = r.next_section().unwrap().unwrap();
        assert_eq!(tag, *b"XTRA");
        assert_eq!(payload, b"future section");
        let (tag, payload) = r.next_section().unwrap().unwrap();
        assert_eq!(tag, TAG_EPOCH);
        assert_eq!(decode_epoch(&payload).unwrap(), 42);
        assert!(r.next_section().unwrap().is_none());
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert!(SnapshotReader::new(&b"NOTSNAPX\x01\0\0\0"[..]).is_err());
        assert!(SnapshotReader::new(&b"CEG"[..]).is_err());
        let mut file = Vec::from(MAGIC);
        file.extend_from_slice(&99u32.to_le_bytes());
        let err = SnapshotReader::new(&file[..]).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn every_truncation_of_a_section_file_errors() {
        let mut file = Vec::new();
        let mut w = SnapshotWriter::new(&mut file).unwrap();
        w.write_section(TAG_EPOCH, &encode_epoch(7)).unwrap();
        w.finish().unwrap();
        // Cuts inside the header fail at `new`; cuts inside the section
        // fail at `next_section`. The one boundary cut (exactly the
        // 12-byte header) is a legal empty snapshot, so start past it.
        for cut in 1..12 {
            assert!(
                SnapshotReader::new(&file[..cut]).is_err(),
                "header truncation at {cut} bytes must error"
            );
        }
        for cut in 13..file.len() {
            let r = SnapshotReader::new(&file[..cut])
                .and_then(|mut r| r.next_section())
                .map(|_| ());
            assert!(r.is_err(), "truncation at {cut} bytes must error");
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut file = Vec::new();
        let mut w = SnapshotWriter::new(&mut file).unwrap();
        w.write_section(TAG_EPOCH, &encode_epoch(7)).unwrap();
        w.finish().unwrap();
        // Flip one payload byte (header is 12 bytes, tag+len 12 more).
        file[25] ^= 0xFF;
        let err = SnapshotReader::new(&file[..])
            .unwrap()
            .next_section()
            .unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn hostile_section_length_cannot_force_allocation() {
        let mut file = Vec::from(MAGIC);
        file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        file.extend_from_slice(b"GRPH");
        file.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd length
        file.extend_from_slice(b"tiny");
        let err = SnapshotReader::new(&file[..])
            .unwrap()
            .next_section()
            .unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn corrupt_graph_payloads_are_rejected() {
        let g = sample();
        let good = encode_graph(&g);
        // Truncations at every byte boundary.
        for cut in 0..good.len() {
            assert!(decode_graph(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_graph(&long).is_err());
        // An out-of-range target vertex.
        let mut bad_target = good.clone();
        let n = bad_target.len();
        bad_target[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_graph(&bad_target).is_err());
    }

    #[test]
    fn atomic_write_preserves_the_old_file_on_failure() {
        let path = std::env::temp_dir().join(format!("ceg-atomic-{}.cegsnap", std::process::id()));
        std::fs::write(&path, b"precious previous snapshot").unwrap();
        let err = atomic_write(&path, |f| {
            use std::io::Write;
            f.write_all(b"partial garbage")?;
            Err(bad("simulated crash mid-write"))
        });
        assert!(err.is_err());
        // The target still holds the old bytes; the temp file is gone.
        assert_eq!(std::fs::read(&path).unwrap(), b"precious previous snapshot");
        let dir = path.parent().unwrap();
        let strays = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&*path.file_name().unwrap().to_string_lossy())
                    && e.file_name() != path.file_name().unwrap()
            })
            .count();
        assert_eq!(strays, 0, "temp file must be cleaned up");
        // And a successful write replaces it.
        atomic_write(&path, |f| {
            use std::io::Write;
            f.write_all(b"new snapshot")
        })
        .unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new snapshot");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sweep_deletes_only_orphaned_temp_files() {
        use crate::vfs::{FaultStorage, Storage};
        use std::path::Path;
        let fs = FaultStorage::new();
        let dir = Path::new("/data");
        // Live artifacts that must survive the sweep...
        fs.install(&dir.join("default.cegsnap"), b"snap".to_vec());
        fs.install(&dir.join("default.cegwal"), b"wal".to_vec());
        fs.install(&dir.join("notes.txt"), b"keep".to_vec());
        // ...and the orphans a hard crash mid-atomic_write leaves.
        fs.install(&dir.join("default.cegsnap.tmp.123.0"), b"torn".to_vec());
        fs.install(&dir.join("default.cegwal.tmp.123.1"), b"torn".to_vec());
        let mut removed = sweep_orphan_temps(&fs, dir).unwrap();
        removed.sort();
        assert_eq!(
            removed,
            vec![
                dir.join("default.cegsnap.tmp.123.0"),
                dir.join("default.cegwal.tmp.123.1"),
            ]
        );
        let mut left = fs.list(dir).unwrap();
        left.sort();
        assert_eq!(
            left,
            vec![
                dir.join("default.cegsnap"),
                dir.join("default.cegwal"),
                dir.join("notes.txt"),
            ]
        );
        // Idempotent on a clean directory.
        assert!(sweep_orphan_temps(&fs, dir).unwrap().is_empty());
    }

    #[test]
    fn atomic_write_crash_leaves_an_orphan_the_sweep_removes() {
        use crate::vfs::{FaultPlan, FaultStorage, Storage};
        use std::path::Path;
        let fs = FaultStorage::new();
        let path = Path::new("/data/ds.cegsnap");
        fs.install(path, b"old good snapshot".to_vec());
        // Crash on the temp-file sync: create (op 0) + write (op 1)
        // happened, the rename never did.
        fs.set_plan(FaultPlan {
            crash_after: Some(2),
            ..Default::default()
        });
        let err = atomic_write_with(&fs, path, |f| {
            use std::io::Write;
            f.write_all(b"new snapshot bytes")
        });
        assert!(err.is_err());
        fs.reboot(usize::MAX);
        // The good snapshot survived; a torn orphan sits next to it.
        assert_eq!(fs.read(path).unwrap(), b"old good snapshot");
        let orphans = sweep_orphan_temps(&fs, Path::new("/data")).unwrap();
        assert_eq!(orphans.len(), 1, "{orphans:?}");
        assert_eq!(
            fs.list(Path::new("/data")).unwrap(),
            vec![path.to_path_buf()]
        );
    }

    #[test]
    fn inconsistent_backward_index_is_rejected() {
        // The last target of the payload is the backward entry of the
        // sample's 4 -2-> 0 edge (in_neighbors(0, 2) == [4]). Rewriting
        // it to another in-range vertex keeps the CSR well-formed and
        // the edge counts equal — only the transpose check can catch it.
        let good = encode_graph(&sample());
        let mut skewed = good.clone();
        let n = skewed.len();
        skewed[n - 4..].copy_from_slice(&3u32.to_le_bytes());
        let err = decode_graph(&skewed).unwrap_err();
        assert!(err.to_string().contains("transpose"), "{err}");
    }

    #[test]
    fn checksum_is_stable_and_length_sensitive() {
        // Deterministic for equal input...
        assert_eq!(section_checksum(b"foobar"), section_checksum(b"foobar"));
        // ...sensitive to content, to a flipped bit, and to a zero tail
        // (the length seed keeps `x` and `x\0` apart).
        assert_ne!(section_checksum(b"foobar"), section_checksum(b"foobas"));
        assert_ne!(section_checksum(b"x"), section_checksum(b"x\0"));
        assert_ne!(section_checksum(b""), section_checksum(b"\0"));
    }
}
