//! Degree-aware vertex renumbering.
//!
//! The bitset intersection kernel ([`crate::VertexBitset`]) probes
//! candidate sets word-at-a-time, so its skip rate depends on how the
//! candidate ids cluster: if the high-degree hubs that dominate candidate
//! sets are scattered across the id space, every probe run touches many
//! words. [`VertexRemap::degree_descending`] renumbers vertices by total
//! degree so hubs collapse into the first few u64 words, which both
//! shrinks the active word range and turns leaf-only words into zero
//! words the kernel skips in one comparison.
//!
//! The remap is a pure bijection on `0..n` carried alongside the
//! renumbered graph: wire-visible ids stay external, the service
//! translates at its edges (update ingestion, snapshot write), and
//! because the permutation is recomputed deterministically from the graph
//! it never needs to be persisted — a snapshot written in external
//! numbering reproduces the same remap when reloaded.

use crate::{GraphBuilder, LabeledGraph, VertexId};

/// A bijective old↔new vertex-id map over the domain `0..len`, identity
/// beyond it (ids introduced later by live updates keep their external
/// value on both sides — the permutation never collides with them because
/// it maps `0..len` onto itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexRemap {
    /// `to_internal[external] = internal`, indexed by external id.
    to_internal: Vec<VertexId>,
    /// `to_external[internal] = external`, indexed by internal id.
    to_external: Vec<VertexId>,
}

impl VertexRemap {
    /// The remap that clusters hubs: external vertices sorted by total
    /// degree (out + in over every label) descending, ties broken by
    /// external id so the permutation is deterministic for a given graph.
    pub fn degree_descending(g: &LabeledGraph) -> VertexRemap {
        let n = g.num_vertices();
        let mut degree = vec![0u64; n];
        for e in g.all_edges() {
            degree[e.src as usize] += 1;
            degree[e.dst as usize] += 1;
        }
        let mut to_external: Vec<VertexId> = (0..n as VertexId).collect();
        to_external.sort_by_key(|&v| (std::cmp::Reverse(degree[v as usize]), v));
        let mut to_internal = vec![0 as VertexId; n];
        for (internal, &external) in to_external.iter().enumerate() {
            to_internal[external as usize] = internal as VertexId;
        }
        VertexRemap {
            to_internal,
            to_external,
        }
    }

    /// The identity remap over `0..n` (used where a dataset opts out of
    /// renumbering but the surrounding plumbing expects a map).
    pub fn identity(n: usize) -> VertexRemap {
        let ids: Vec<VertexId> = (0..n as VertexId).collect();
        VertexRemap {
            to_internal: ids.clone(),
            to_external: ids,
        }
    }

    /// Size of the permuted domain (ids at or beyond it map to themselves).
    pub fn len(&self) -> usize {
        self.to_external.len()
    }

    pub fn is_empty(&self) -> bool {
        self.to_external.is_empty()
    }

    /// Whether the permutation is the identity on its whole domain.
    pub fn is_identity(&self) -> bool {
        self.to_external
            .iter()
            .enumerate()
            .all(|(i, &v)| v == i as VertexId)
    }

    /// External (wire-visible) id → internal (bitset-friendly) id.
    #[inline]
    pub fn to_internal(&self, external: VertexId) -> VertexId {
        self.to_internal
            .get(external as usize)
            .copied()
            .unwrap_or(external)
    }

    /// Internal id → external (wire-visible) id.
    #[inline]
    pub fn to_external(&self, internal: VertexId) -> VertexId {
        self.to_external
            .get(internal as usize)
            .copied()
            .unwrap_or(internal)
    }

    /// The graph with every vertex id mapped external → internal. Built
    /// through [`GraphBuilder`], so the result is in canonical form: every
    /// relation spans the full domain with sorted duplicate-free rows.
    pub fn apply(&self, g: &LabeledGraph) -> LabeledGraph {
        self.rebuild(g, |v| self.to_internal(v))
    }

    /// The inverse of [`apply`](Self::apply): every vertex id mapped
    /// internal → external. Also canonical-form; applying `externalize`
    /// then `apply` round-trips byte-identically.
    pub fn externalize(&self, g: &LabeledGraph) -> LabeledGraph {
        self.rebuild(g, |v| self.to_external(v))
    }

    fn rebuild(&self, g: &LabeledGraph, f: impl Fn(VertexId) -> VertexId) -> LabeledGraph {
        let mut b = GraphBuilder::with_labels(g.num_vertices(), g.num_labels());
        for e in g.all_edges() {
            b.add_edge(f(e.src), f(e.dst), e.label);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledGraph {
        // Vertex 3 is the hub: degree 5. Vertex 5 is isolated.
        let mut b = GraphBuilder::with_labels(6, 2);
        b.add_edge(0, 3, 0);
        b.add_edge(1, 3, 0);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 4, 0);
        b.add_edge(3, 0, 1);
        b.build()
    }

    #[test]
    fn hub_gets_internal_id_zero() {
        let g = sample();
        let m = VertexRemap::degree_descending(&g);
        assert_eq!(m.to_internal(3), 0);
        assert_eq!(m.to_external(0), 3);
        // Bijection over the whole domain, identity beyond it.
        let mut seen: Vec<VertexId> = (0..6).map(|v| m.to_internal(v)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
        assert_eq!(m.to_internal(99), 99);
        assert_eq!(m.to_external(99), 99);
    }

    #[test]
    fn apply_preserves_structure_and_roundtrips() {
        let g = sample();
        let m = VertexRemap::degree_descending(&g);
        let internal = m.apply(&g);
        assert_eq!(internal.num_vertices(), g.num_vertices());
        assert_eq!(internal.num_edges(), g.num_edges());
        for e in g.all_edges() {
            assert!(internal.has_edge(m.to_internal(e.src), m.to_internal(e.dst), e.label));
        }
        let back = m.externalize(&internal);
        let mut want: Vec<_> = g.all_edges().collect();
        let mut got: Vec<_> = back.all_edges().collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got);
    }

    #[test]
    fn deterministic_for_a_given_graph() {
        let g = sample();
        assert_eq!(
            VertexRemap::degree_descending(&g),
            VertexRemap::degree_descending(&g)
        );
        // Recomputing from the externalized form of the renumbered graph
        // (what snapshot restore does) yields the same permutation.
        let m = VertexRemap::degree_descending(&g);
        let restored = m.externalize(&m.apply(&g));
        assert_eq!(VertexRemap::degree_descending(&restored), m);
    }

    #[test]
    fn identity_remap() {
        let m = VertexRemap::identity(4);
        assert!(m.is_identity());
        assert_eq!(m.len(), 4);
        let g = sample();
        let m2 = VertexRemap::degree_descending(&g);
        assert!(!m2.is_identity());
    }
}
