//! Sorted-slice intersection primitives.
//!
//! CSR neighbour lists are sorted and duplicate-free, so candidate
//! generation during matching reduces to intersecting a handful of sorted
//! slices. Two regimes matter in practice:
//!
//! * **comparable lengths** — a linear two-pointer merge touches every
//!   element once and wins on memory locality;
//! * **skewed lengths** — galloping (exponential probing) through the
//!   longer slice visits O(small · log(large / small)) elements, the
//!   classic worst-case-optimal-join access pattern.
//!
//! [`intersect_into`] and [`refine_in_place`] switch between the two on a
//! length-ratio crossover ([`GALLOP_RATIO`]). Inputs must be sorted and
//! duplicate-free; outputs then are too.

use crate::VertexId;

/// Length ratio beyond which galloping through the longer slice beats a
/// linear merge. 16 keeps the merge for same-order-of-magnitude slices
/// (where its branch-predictable loop wins) and switches for the skewed
/// hub-vs-leaf intersections where galloping is asymptotically better.
pub const GALLOP_RATIO: usize = 16;

/// First index `i` in sorted `a` with `a[i] >= target` (i.e. the lower
/// bound), found by exponential probing from the front. O(log i).
#[inline]
pub fn gallop(a: &[VertexId], target: VertexId) -> usize {
    if a.is_empty() || a[0] >= target {
        return 0;
    }
    // Invariant: a[lo] < target. Double `step` until a[lo + step] >= target
    // or the slice ends, then binary-search the bracketed window.
    let mut lo = 0usize;
    let mut step = 1usize;
    while lo + step < a.len() && a[lo + step] < target {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step + 1).min(a.len());
    lo + 1
        + match a[lo + 1..hi].binary_search(&target) {
            Ok(i) | Err(i) => i,
        }
}

/// Append the intersection of sorted duplicate-free `a` and `b` to `out`.
/// Adaptive: linear merge for comparable lengths, galloping when one side
/// is more than [`GALLOP_RATIO`] times longer.
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        // Gallop the small slice through the large one; the cursor only
        // moves forward, so the whole pass is O(|small| · log(|large|)).
        let mut rest = large;
        for &x in small {
            let i = gallop(rest, x);
            if i == rest.len() {
                return;
            }
            if rest[i] == x {
                out.push(x);
            }
            rest = &rest[i..];
        }
        return;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < small.len() && j < large.len() {
        let (x, y) = (small[i], large[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Retain only the elements of `buf` that also occur in sorted
/// duplicate-free `other`, in place and allocation-free. `buf` must be
/// sorted and duplicate-free (as produced by [`intersect_into`]).
pub fn refine_in_place(buf: &mut Vec<VertexId>, other: &[VertexId]) {
    if buf.is_empty() {
        return;
    }
    if other.is_empty() {
        buf.clear();
        return;
    }
    let mut write = 0usize;
    if other.len() / buf.len() >= GALLOP_RATIO {
        let mut from = 0usize; // cursor into `other`, monotone
        for read in 0..buf.len() {
            let x = buf[read];
            let i = gallop(&other[from..], x);
            if from + i == other.len() {
                break;
            }
            if other[from + i] == x {
                buf[write] = x;
                write += 1;
            }
            from += i;
        }
    } else {
        let mut j = 0usize;
        for read in 0..buf.len() {
            let x = buf[read];
            while j < other.len() && other[j] < x {
                j += 1;
            }
            if j == other.len() {
                break;
            }
            if other[j] == x {
                buf[write] = x;
                write += 1;
                j += 1;
            }
        }
    }
    buf.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn isect(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
        let mut out = Vec::new();
        intersect_into(a, b, &mut out);
        out
    }

    #[test]
    fn gallop_finds_lower_bound() {
        let a = [2, 4, 6, 8, 10];
        assert_eq!(gallop(&a, 0), 0);
        assert_eq!(gallop(&a, 2), 0);
        assert_eq!(gallop(&a, 3), 1);
        assert_eq!(gallop(&a, 10), 4);
        assert_eq!(gallop(&a, 11), 5);
        assert_eq!(gallop(&[], 5), 0);
    }

    #[test]
    fn gallop_one_element() {
        assert_eq!(gallop(&[7], 6), 0);
        assert_eq!(gallop(&[7], 7), 0);
        assert_eq!(gallop(&[7], 8), 1);
    }

    #[test]
    fn merge_and_gallop_regimes_agree() {
        // comparable lengths → merge path
        assert_eq!(isect(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), vec![3, 7]);
        // skewed lengths → gallop path (ratio ≥ GALLOP_RATIO)
        let large: Vec<VertexId> = (0..200).map(|i| i * 2).collect();
        assert_eq!(isect(&[5, 40, 41, 398], &large), vec![40, 398]);
        assert_eq!(isect(&large, &[5, 40, 41, 398]), vec![40, 398]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(isect(&[], &[1, 2, 3]), Vec::<VertexId>::new());
        assert_eq!(isect(&[1, 2, 3], &[]), Vec::<VertexId>::new());
        assert_eq!(isect(&[], &[]), Vec::<VertexId>::new());
    }

    #[test]
    fn refine_keeps_common_elements() {
        let mut buf = vec![1, 4, 6, 9, 12];
        refine_in_place(&mut buf, &[0, 4, 5, 9, 13]);
        assert_eq!(buf, vec![4, 9]);
        refine_in_place(&mut buf, &[]);
        assert!(buf.is_empty());
    }

    #[test]
    fn refine_gallop_regime() {
        let other: Vec<VertexId> = (0..500).map(|i| i * 3).collect();
        let mut buf = vec![3, 4, 299, 300, 1497];
        refine_in_place(&mut buf, &other);
        assert_eq!(buf, vec![3, 300, 1497]);
    }

    #[test]
    fn output_is_sorted_and_duplicate_free() {
        // exhaustive over small subsets of 0..8
        for am in 0u16..256 {
            for bm in 0u16..256 {
                let a: Vec<VertexId> = (0..8).filter(|i| am & (1 << i) != 0).collect();
                let b: Vec<VertexId> = (0..8).filter(|i| bm & (1 << i) != 0).collect();
                let got = isect(&a, &b);
                let want: Vec<VertexId> = a.iter().copied().filter(|x| b.contains(x)).collect();
                assert_eq!(got, want, "a={a:?} b={b:?}");
                let mut refined = a.clone();
                refine_in_place(&mut refined, &b);
                assert_eq!(refined, want, "refine a={a:?} b={b:?}");
            }
        }
    }
}
