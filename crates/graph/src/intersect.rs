//! Sorted-slice intersection primitives.
//!
//! CSR neighbour lists are sorted and duplicate-free, so candidate
//! generation during matching reduces to intersecting a handful of sorted
//! slices. Two regimes matter in practice:
//!
//! * **comparable lengths** — a linear two-pointer merge touches every
//!   element once and wins on memory locality;
//! * **skewed lengths** — galloping (exponential probing) through the
//!   longer slice visits O(small · log(large / small)) elements, the
//!   classic worst-case-optimal-join access pattern.
//!
//! [`intersect_into`] and [`refine_in_place`] switch between the two on a
//! length-ratio crossover ([`GALLOP_RATIO`]). Inputs must be sorted and
//! duplicate-free; outputs then are too.
//!
//! A third regime — **dense candidate sets probed many times** — is served
//! by [`VertexBitset`]: build a u64-word bitset over the candidate set
//! once, then AND neighbour lists against it word-at-a-time. Each probe
//! costs one shift and mask, runs of probes falling into a zero word are
//! skipped wholesale, and the bitset is rebuilt only when the candidate
//! set changes. The forced variants ([`intersect_into_merge`],
//! [`intersect_into_gallop`]) exist so tests can pin each strategy
//! independently of the adaptive crossover.

use crate::VertexId;

/// Length ratio beyond which galloping through the longer slice beats a
/// linear merge. 16 keeps the merge for same-order-of-magnitude slices
/// (where its branch-predictable loop wins) and switches for the skewed
/// hub-vs-leaf intersections where galloping is asymptotically better.
pub const GALLOP_RATIO: usize = 16;

/// First index `i` in sorted `a` with `a[i] >= target` (i.e. the lower
/// bound), found by exponential probing from the front. O(log i).
#[inline]
pub fn gallop(a: &[VertexId], target: VertexId) -> usize {
    if a.is_empty() || a[0] >= target {
        return 0;
    }
    // Invariant: a[lo] < target. Double `step` until a[lo + step] >= target
    // or the slice ends, then binary-search the bracketed window.
    let mut lo = 0usize;
    let mut step = 1usize;
    while lo + step < a.len() && a[lo + step] < target {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step + 1).min(a.len());
    lo + 1
        + match a[lo + 1..hi].binary_search(&target) {
            Ok(i) | Err(i) => i,
        }
}

/// Append the intersection of sorted duplicate-free `a` and `b` to `out`.
/// Adaptive: linear merge for comparable lengths, galloping when one side
/// is more than [`GALLOP_RATIO`] times longer.
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        intersect_into_gallop(small, large, out);
    } else {
        intersect_into_merge(small, large, out);
    }
}

/// [`intersect_into`] pinned to the linear two-pointer merge, regardless
/// of the length ratio.
pub fn intersect_into_merge(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
}

/// [`intersect_into`] pinned to galloping: the shorter slice is probed
/// through the longer one by exponential search, regardless of the ratio.
pub fn intersect_into_gallop(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    // Gallop the small slice through the large one; the cursor only
    // moves forward, so the whole pass is O(|small| · log(|large|)).
    let mut rest = large;
    for &x in small {
        let i = gallop(rest, x);
        if i == rest.len() {
            return;
        }
        if rest[i] == x {
            out.push(x);
        }
        rest = &rest[i..];
    }
}

/// Retain only the elements of `buf` that also occur in sorted
/// duplicate-free `other`, in place and allocation-free. `buf` must be
/// sorted and duplicate-free (as produced by [`intersect_into`]).
pub fn refine_in_place(buf: &mut Vec<VertexId>, other: &[VertexId]) {
    if buf.is_empty() {
        return;
    }
    if other.is_empty() {
        buf.clear();
        return;
    }
    if other.len() / buf.len() >= GALLOP_RATIO {
        refine_in_place_gallop(buf, other);
    } else {
        refine_in_place_merge(buf, other);
    }
}

/// [`refine_in_place`] pinned to the linear merge walk.
pub fn refine_in_place_merge(buf: &mut Vec<VertexId>, other: &[VertexId]) {
    let mut write = 0usize;
    let mut j = 0usize;
    for read in 0..buf.len() {
        let x = buf[read];
        while j < other.len() && other[j] < x {
            j += 1;
        }
        if j == other.len() {
            break;
        }
        if other[j] == x {
            buf[write] = x;
            write += 1;
            j += 1;
        }
    }
    buf.truncate(write);
}

/// [`refine_in_place`] pinned to galloping through `other`.
pub fn refine_in_place_gallop(buf: &mut Vec<VertexId>, other: &[VertexId]) {
    let mut write = 0usize;
    let mut from = 0usize; // cursor into `other`, monotone
    for read in 0..buf.len() {
        let x = buf[read];
        let i = gallop(&other[from..], x);
        if from + i == other.len() {
            break;
        }
        if other[from + i] == x {
            buf[write] = x;
            write += 1;
        }
        from += i;
    }
    buf.truncate(write);
}

/// A u64-word bitset over vertex ids, reused across candidate sets.
///
/// The counting kernel builds one bitset per recursion depth over the
/// neighbour list of a *stable* bound variable (one whose binding changes
/// rarely), then ANDs the remaining neighbour lists against it word-at-a-
/// time: each probe is a shift and mask, and a run of probes landing in a
/// zero word is skipped in one comparison. [`reset`](Self::reset) zeroes
/// only the word range the previous members occupied, so repeated resets
/// stay O(|members|) rather than O(|domain|), and no method allocates
/// after construction.
#[derive(Debug)]
pub struct VertexBitset {
    words: Vec<u64>,
    /// Active word range `[lo, hi)` — all words outside it are zero.
    lo: usize,
    hi: usize,
    /// Number of set bits (members are duplicate-free by contract).
    len: usize,
}

impl VertexBitset {
    /// A bitset able to hold vertex ids `0..num_vertices`. The only
    /// allocation this type ever performs.
    pub fn with_domain(num_vertices: usize) -> Self {
        VertexBitset {
            words: vec![0u64; num_vertices.div_ceil(64)],
            lo: 0,
            hi: 0,
            len: 0,
        }
    }

    /// Number of members in the current set.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all members, zeroing only the previously active word range.
    pub fn clear(&mut self) {
        for w in &mut self.words[self.lo..self.hi] {
            *w = 0;
        }
        self.lo = 0;
        self.hi = 0;
        self.len = 0;
    }

    /// Replace the member set. `members` must be sorted, duplicate-free
    /// and within the domain the bitset was constructed for.
    pub fn reset(&mut self, members: &[VertexId]) {
        self.clear();
        let (Some(&first), Some(&last)) = (members.first(), members.last()) else {
            return;
        };
        debug_assert!(
            (last as usize) < self.words.len() * 64,
            "member out of domain"
        );
        self.lo = first as usize >> 6;
        self.hi = (last as usize >> 6) + 1;
        for &v in members {
            self.words[v as usize >> 6] |= 1u64 << (v & 63);
        }
        self.len = members.len();
    }

    /// Membership test; ids beyond the domain are simply absent.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        let w = v as usize >> 6;
        w < self.hi && self.words[w] & (1u64 << (v & 63)) != 0
    }

    /// Append the members of sorted duplicate-free `probe` that are also
    /// in the set to `out` — the bitset-side intersection kernel. Probes
    /// sharing a word load it once; a zero word skips its whole run.
    pub fn filter_into(&self, probe: &[VertexId], out: &mut Vec<VertexId>) {
        self.walk(probe, |v| out.push(v));
    }

    /// Count the members of sorted duplicate-free `probe` that are also
    /// in the set, without writing them anywhere — the counting-only
    /// variant of [`filter_into`](Self::filter_into).
    pub fn count_hits(&self, probe: &[VertexId]) -> usize {
        let mut hits = 0usize;
        self.walk(probe, |_| hits += 1);
        hits
    }

    #[inline]
    fn walk(&self, probe: &[VertexId], mut on_hit: impl FnMut(VertexId)) {
        let mut i = 0usize;
        while i < probe.len() {
            let w = probe[i] as usize >> 6;
            if w >= self.hi {
                // `probe` is sorted: every later probe lands in an even
                // higher word, all zero.
                return;
            }
            let word = self.words[w];
            if word == 0 {
                i += 1;
                while i < probe.len() && probe[i] as usize >> 6 == w {
                    i += 1;
                }
                continue;
            }
            while i < probe.len() {
                let v = probe[i];
                if v as usize >> 6 != w {
                    break;
                }
                if word & (1u64 << (v & 63)) != 0 {
                    on_hit(v);
                }
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn isect(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
        let mut out = Vec::new();
        intersect_into(a, b, &mut out);
        out
    }

    #[test]
    fn gallop_finds_lower_bound() {
        let a = [2, 4, 6, 8, 10];
        assert_eq!(gallop(&a, 0), 0);
        assert_eq!(gallop(&a, 2), 0);
        assert_eq!(gallop(&a, 3), 1);
        assert_eq!(gallop(&a, 10), 4);
        assert_eq!(gallop(&a, 11), 5);
        assert_eq!(gallop(&[], 5), 0);
    }

    #[test]
    fn gallop_one_element() {
        assert_eq!(gallop(&[7], 6), 0);
        assert_eq!(gallop(&[7], 7), 0);
        assert_eq!(gallop(&[7], 8), 1);
    }

    #[test]
    fn merge_and_gallop_regimes_agree() {
        // comparable lengths → merge path
        assert_eq!(isect(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), vec![3, 7]);
        // skewed lengths → gallop path (ratio ≥ GALLOP_RATIO)
        let large: Vec<VertexId> = (0..200).map(|i| i * 2).collect();
        assert_eq!(isect(&[5, 40, 41, 398], &large), vec![40, 398]);
        assert_eq!(isect(&large, &[5, 40, 41, 398]), vec![40, 398]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(isect(&[], &[1, 2, 3]), Vec::<VertexId>::new());
        assert_eq!(isect(&[1, 2, 3], &[]), Vec::<VertexId>::new());
        assert_eq!(isect(&[], &[]), Vec::<VertexId>::new());
    }

    #[test]
    fn refine_keeps_common_elements() {
        let mut buf = vec![1, 4, 6, 9, 12];
        refine_in_place(&mut buf, &[0, 4, 5, 9, 13]);
        assert_eq!(buf, vec![4, 9]);
        refine_in_place(&mut buf, &[]);
        assert!(buf.is_empty());
    }

    #[test]
    fn refine_gallop_regime() {
        let other: Vec<VertexId> = (0..500).map(|i| i * 3).collect();
        let mut buf = vec![3, 4, 299, 300, 1497];
        refine_in_place(&mut buf, &other);
        assert_eq!(buf, vec![3, 300, 1497]);
    }

    #[test]
    fn output_is_sorted_and_duplicate_free() {
        // exhaustive over small subsets of 0..8
        for am in 0u16..256 {
            for bm in 0u16..256 {
                let a: Vec<VertexId> = (0..8).filter(|i| am & (1 << i) != 0).collect();
                let b: Vec<VertexId> = (0..8).filter(|i| bm & (1 << i) != 0).collect();
                let got = isect(&a, &b);
                let want: Vec<VertexId> = a.iter().copied().filter(|x| b.contains(x)).collect();
                assert_eq!(got, want, "a={a:?} b={b:?}");
                let mut refined = a.clone();
                refine_in_place(&mut refined, &b);
                assert_eq!(refined, want, "refine a={a:?} b={b:?}");
                for f in [intersect_into_merge, intersect_into_gallop] {
                    let mut forced = Vec::new();
                    f(&a, &b, &mut forced);
                    assert_eq!(forced, want, "forced a={a:?} b={b:?}");
                }
            }
        }
    }

    /// Intersect via the bitset path: candidate set → bitset, then filter
    /// the probe list through it.
    fn bitset_isect(domain: usize, cand: &[VertexId], probe: &[VertexId]) -> Vec<VertexId> {
        let mut bs = VertexBitset::with_domain(domain);
        bs.reset(cand);
        assert_eq!(bs.len(), cand.len());
        let mut out = Vec::new();
        bs.filter_into(probe, &mut out);
        assert_eq!(bs.count_hits(probe), out.len());
        out
    }

    #[test]
    fn bitset_word_edge_boundaries() {
        // Off-by-one around the u64 word edge: members and probes at 63,
        // 64, 127, 128 — the first/last bit of adjacent words.
        let cand: Vec<VertexId> = vec![0, 63, 64, 127, 128];
        for probe in [
            vec![63],
            vec![64],
            vec![62, 63, 64, 65],
            vec![126, 127, 128, 129],
            vec![0, 63, 64, 127, 128],
        ] {
            let mut want = Vec::new();
            intersect_into_merge(&cand, &probe, &mut want);
            assert_eq!(bitset_isect(129, &cand, &probe), want, "probe={probe:?}");
        }
    }

    #[test]
    fn bitset_empty_and_full_candidate_sets() {
        let probe: Vec<VertexId> = (0..130).step_by(3).collect();
        assert_eq!(bitset_isect(130, &[], &probe), Vec::<VertexId>::new());
        let full: Vec<VertexId> = (0..130).collect();
        assert_eq!(bitset_isect(130, &full, &probe), probe);
        // Probe entirely past the active range exits on the hi-word check.
        assert_eq!(
            bitset_isect(200, &[0, 1], &[190, 199]),
            Vec::<VertexId>::new()
        );
        // Empty probe.
        assert_eq!(bitset_isect(200, &full, &[]), Vec::<VertexId>::new());
    }

    #[test]
    fn bitset_single_word_domain() {
        // Domains of 1..=64 vertices occupy exactly one word.
        for n in [1usize, 2, 63, 64] {
            let cand: Vec<VertexId> = (0..n as VertexId).filter(|v| v % 2 == 0).collect();
            let probe: Vec<VertexId> = (0..n as VertexId).collect();
            let want: Vec<VertexId> = cand.clone();
            assert_eq!(bitset_isect(n, &cand, &probe), want, "n={n}");
        }
    }

    #[test]
    fn bitset_reset_reuses_buffer_and_clears_stale_words() {
        let mut bs = VertexBitset::with_domain(512);
        bs.reset(&[500, 511]);
        assert!(bs.contains(511));
        // A reset to a lower word range must not leave stale high bits.
        bs.reset(&[3, 64]);
        assert!(!bs.contains(500) && !bs.contains(511));
        assert!(bs.contains(3) && bs.contains(64));
        assert_eq!(bs.count_hits(&[3, 64, 500, 511]), 2);
        bs.clear();
        assert!(bs.is_empty());
        assert_eq!(bs.count_hits(&[3, 64]), 0);
    }

    #[test]
    fn bitset_matches_merge_on_random_pairs() {
        // Seeded fuzz: 400 random candidate-set/neighbour-list pairs over
        // mixed densities and domains that straddle word boundaries.
        // xorshift64* — deterministic, no external RNG dependency
        fn rnd(s: &mut u64) -> u64 {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            s.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
        fn draw(s: &mut u64, domain: usize, density_pct: u64) -> Vec<VertexId> {
            (0..domain as VertexId)
                .filter(|_| rnd(s) % 100 < density_pct)
                .collect()
        }
        let mut state = 0x2022_c4e6_u64; // fixed seed
        for round in 0..400 {
            let domain = 1 + (rnd(&mut state) % 300) as usize;
            let cd = 1 + rnd(&mut state) % 99;
            let pd = 1 + rnd(&mut state) % 99;
            let cand = draw(&mut state, domain, cd);
            let probe = draw(&mut state, domain, pd);
            let mut want = Vec::new();
            intersect_into_merge(&cand, &probe, &mut want);
            assert_eq!(
                bitset_isect(domain, &cand, &probe),
                want,
                "round={round} domain={domain} cand={cand:?} probe={probe:?}"
            );
        }
    }
}
