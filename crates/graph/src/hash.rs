//! A small FxHash-style hasher.
//!
//! The Rust Performance Book recommends replacing SipHash with a fast
//! multiplicative hash for integer-keyed tables on trusted inputs. The
//! offline crate allowlist for this project does not include `rustc-hash`,
//! so we implement the same algorithm (word-at-a-time multiply-rotate-xor)
//! here. It is used for every hot map in the workspace.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash algorithm (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher: not HashDoS-resistant, but several times
/// faster than SipHash for the short integer keys used in this workspace.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement with the fast hasher.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// Hash a single vertex id into one of `buckets` partitions.
///
/// Used by the bound-sketch optimization (Section 5.2.1): relations are
/// partitioned by hashing the values of partition attributes. A cheap
/// avalanche (splitmix-style) keeps adjacent ids from landing in the same
/// bucket systematically.
#[inline]
pub fn bucket_of(v: u32, buckets: u32) -> u32 {
    debug_assert!(buckets > 0);
    let mut x = v as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % buckets as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn hasher_distinguishes_values() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(1);
        b.write_u32(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn write_bytes_matches_padding_semantics() {
        // 9 bytes exercise both the full-word and remainder paths.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_works_with_fx_hasher() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(11, "eleven");
        assert_eq!(m[&7], "seven");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn bucket_of_is_in_range_and_covers_buckets() {
        let buckets = 4;
        let mut seen = [false; 4];
        for v in 0..1000u32 {
            let b = bucket_of(v, buckets);
            assert!(b < buckets);
            seen[b as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn bucket_of_single_bucket_is_zero() {
        for v in [0u32, 1, 99, u32::MAX] {
            assert_eq!(bucket_of(v, 1), 0);
        }
    }
}
