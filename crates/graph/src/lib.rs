//! # ceg-graph
//!
//! Storage substrate for the CEG cardinality-estimation library.
//!
//! A dataset is an edge-labeled directed graph, equivalently a set of binary
//! relations — one relation per edge label, holding `(source, destination)`
//! pairs (Section 2 of the paper). The [`LabeledGraph`] type stores each
//! label's relation as a pair of CSR indexes (forward and backward) so that
//! degree lookups are O(1), neighbour scans are cache-friendly, and edge
//! membership tests are O(log deg).
//!
//! The crate also provides:
//! * [`GraphBuilder`] — incremental construction with duplicate removal,
//! * [`GraphDelta`] / [`OverlayGraph`] / [`LabeledGraph::rebase`] — the
//!   live-update layer: batched edge insertions/deletions overlaid on the
//!   immutable CSR, folded into a fresh graph once a delta grows large,
//! * [`GraphView`] — the read-access trait the counting kernel is generic
//!   over, implemented by both the CSR graph and the overlay,
//! * [`hash`] — a small FxHash-style hasher used throughout the workspace,
//! * [`io`] — plain-text edge-list persistence,
//! * [`stats`] — per-label summary statistics used by estimators,
//! * [`vfs`] — the [`vfs::Storage`] seam durable I/O routes through,
//!   with the fault-injecting [`vfs::FaultStorage`] for crash testing,
//! * [`wal`] — the append-only `.cegwal` commit log with torn-tail
//!   prefix recovery.
//!
//! # Example
//!
//! ```
//! use ceg_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1, 0); // src, dst, label
//! b.add_edge(1, 2, 0);
//! b.add_edge(1, 2, 1);
//! let g = b.build();
//!
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.label_count(0), 2);           // |R_0|
//! assert_eq!(g.out_neighbors(1, 0), &[2]);   // forward index
//! assert_eq!(g.in_neighbors(2, 1), &[1]);    // backward index
//! assert_eq!(g.max_out_degree(0), 1);
//! ```

pub mod builder;
pub mod csr;
pub mod delta;
pub mod graph;
pub mod hash;
pub mod intersect;
pub mod io;
pub mod overlay;
pub mod renumber;
pub mod snapshot;
pub mod stats;
pub mod sync;
pub mod vfs;
pub mod view;
pub mod wal;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use delta::GraphDelta;
pub use graph::{Edge, LabeledGraph};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use intersect::{gallop, intersect_into, refine_in_place, VertexBitset};
pub use overlay::OverlayGraph;
pub use renumber::VertexRemap;
pub use stats::LabelStats;
pub use view::GraphView;

/// Identifier of a data vertex. Kept at 32 bits: the paper's largest dataset
/// has 45M vertices and our simulated stand-ins are far smaller.
pub type VertexId = u32;

/// Identifier of an edge label (= one binary relation). The paper's datasets
/// have 24–127 labels, so 16 bits is ample.
pub type LabelId = u16;
