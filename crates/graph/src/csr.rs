//! Compressed sparse row adjacency index.
//!
//! One [`Csr`] stores the adjacency of a single relation in a single
//! direction: `neighbors(v)` returns the sorted list of endpoints reachable
//! from `v` through edges of that relation. Sorted neighbour slices give
//! O(log d) membership tests and allow merge-intersection during matching.

use crate::VertexId;

/// CSR index over one direction of one relation.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    /// `offsets[v]..offsets[v + 1]` indexes into `targets` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated, per-vertex-sorted neighbour lists.
    targets: Vec<VertexId>,
    /// Cached maximum degree (the index is immutable after construction;
    /// pessimistic bounds and matcher buffer sizing query this hot).
    max_degree: u32,
    /// Cached `|π_X R|` — number of vertices with non-zero degree.
    num_active: u32,
}

impl Csr {
    /// Build a CSR from `(from, to)` pairs over a domain of `num_vertices`.
    ///
    /// Pairs may arrive in any order; duplicates must already be removed by
    /// the caller (the [`crate::GraphBuilder`] does this).
    pub fn from_pairs(num_vertices: usize, pairs: &[(VertexId, VertexId)]) -> Self {
        let mut counts = vec![0u32; num_vertices + 1];
        for &(f, _) in pairs {
            counts[f as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut targets = vec![0 as VertexId; pairs.len()];
        let mut cursor = counts;
        for &(f, t) in pairs {
            let c = &mut cursor[f as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        // Sort each neighbour list for binary-search membership tests and
        // merge/gallop intersection; cache the degree aggregates.
        let mut max_degree = 0u32;
        let mut num_active = 0u32;
        for v in 0..num_vertices {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[s..e].sort_unstable();
            let d = (e - s) as u32;
            max_degree = max_degree.max(d);
            num_active += (d > 0) as u32;
        }
        Csr {
            offsets,
            targets,
            max_degree,
            num_active,
        }
    }

    /// Number of vertices in the domain.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of stored edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Sorted neighbours of `v`. Empty slice if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        if v + 1 >= self.offsets.len() {
            return &[];
        }
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// True if an edge `v -> t` is present.
    #[inline]
    pub fn contains(&self, v: VertexId, t: VertexId) -> bool {
        self.neighbors(v).binary_search(&t).is_ok()
    }

    /// Maximum degree over all vertices (0 for an empty index). O(1):
    /// cached at construction.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree as usize
    }

    /// Number of vertices with non-zero degree (`|π_X R|` for this side).
    /// O(1): cached at construction.
    #[inline]
    pub fn num_active(&self) -> usize {
        self.num_active as usize
    }

    /// Iterate the vertices with non-zero degree, in increasing id order.
    /// The matcher seeds unconstrained root variables from this list
    /// instead of scanning the whole domain.
    pub fn active_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices())
            .filter(move |&v| self.offsets[v] < self.offsets[v + 1])
            .map(|v| v as VertexId)
    }

    /// Append the common neighbours of `u` and `v` (in this direction) to
    /// `out` — a slice-level building block for multi-way intersection.
    pub fn intersect_neighbors_into(&self, u: VertexId, v: VertexId, out: &mut Vec<VertexId>) {
        crate::intersect::intersect_into(self.neighbors(u), self.neighbors(v), out);
    }

    /// Append the intersection of `v`'s neighbour list with an arbitrary
    /// sorted duplicate-free slice to `out`.
    pub fn intersect_with_into(&self, v: VertexId, other: &[VertexId], out: &mut Vec<VertexId>) {
        crate::intersect::intersect_into(self.neighbors(v), other, out);
    }

    /// Fold a delta into a fresh CSR over a (possibly larger) domain of
    /// `num_vertices`: one merge walk per vertex over the base neighbour
    /// list, the insertions and the deletions — O(|base| + |delta|), no
    /// per-vertex sort.
    ///
    /// `adds` and `dels` are `(from, to)` pairs, sorted lexicographically
    /// and duplicate-free, and normalized against this CSR: every add is
    /// absent from the base, every del is present (see
    /// [`crate::GraphDelta::effective`]); the two sets are disjoint.
    pub fn rebase(
        &self,
        num_vertices: usize,
        adds: &[(VertexId, VertexId)],
        dels: &[(VertexId, VertexId)],
    ) -> Csr {
        debug_assert!(adds.is_sorted() && dels.is_sorted());
        debug_assert!(num_vertices >= self.num_vertices());
        let mut offsets = vec![0u32; num_vertices + 1];
        let mut targets =
            Vec::with_capacity((self.num_edges() + adds.len()).saturating_sub(dels.len()));
        let mut max_degree = 0u32;
        let mut num_active = 0u32;
        let (mut ai, mut di) = (0usize, 0usize);
        let (mut scratch_a, mut scratch_d) = (Vec::new(), Vec::new());
        for v in 0..num_vertices {
            let row_start = targets.len();
            let base = self.neighbors(v as VertexId);
            let a0 = ai;
            while ai < adds.len() && adds[ai].0 == v as VertexId {
                ai += 1;
            }
            let d0 = di;
            while di < dels.len() && dels[di].0 == v as VertexId {
                di += 1;
            }
            scratch_a.clear();
            scratch_a.extend(adds[a0..ai].iter().map(|p| p.1));
            scratch_d.clear();
            scratch_d.extend(dels[d0..di].iter().map(|p| p.1));
            merge_row_into(base, &scratch_a, &scratch_d, &mut targets);
            offsets[v + 1] = targets.len() as u32;
            let d = (targets.len() - row_start) as u32;
            max_degree = max_degree.max(d);
            num_active += (d > 0) as u32;
        }
        debug_assert_eq!(ai, adds.len(), "adds must stay within the domain");
        debug_assert_eq!(di, dels.len(), "dels must stay within the domain");
        Csr {
            offsets,
            targets,
            max_degree,
            num_active,
        }
    }

    /// The raw CSR arrays `(offsets, targets)` — the exact bytes binary
    /// persistence writes ([`crate::snapshot`]).
    pub(crate) fn raw_parts(&self) -> (&[u32], &[VertexId]) {
        (&self.offsets, &self.targets)
    }

    /// Rebuild a CSR from raw arrays, re-deriving the cached aggregates
    /// and validating every structural invariant the matcher relies on —
    /// monotone offsets ending at `targets.len()`, strictly sorted
    /// (duplicate-free) rows — so a corrupt snapshot surfaces as an error
    /// here instead of as misbehavior (or a panic) deep in a traversal.
    pub(crate) fn from_raw_parts(offsets: Vec<u32>, targets: Vec<VertexId>) -> Result<Csr, String> {
        if offsets.is_empty() {
            // The empty (default) index: legal — `LabeledGraph::rebase`
            // leaves gap labels as default CSRs — but only with no
            // targets.
            if targets.is_empty() {
                return Ok(Csr::default());
            }
            return Err("CSR with no offsets cannot store targets".into());
        }
        if offsets[0] != 0 {
            return Err("CSR offsets must start at 0".into());
        }
        if *offsets.last().unwrap() as usize != targets.len() {
            return Err(format!(
                "CSR offsets end at {} but {} targets are stored",
                offsets.last().unwrap(),
                targets.len()
            ));
        }
        let mut max_degree = 0u32;
        let mut num_active = 0u32;
        for v in 0..offsets.len() - 1 {
            let (s, e) = (offsets[v], offsets[v + 1]);
            if s > e {
                return Err(format!("CSR offsets decrease at vertex {v}"));
            }
            let row = &targets[s as usize..e as usize];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!(
                    "CSR neighbour list of vertex {v} is not strictly sorted"
                ));
            }
            let d = e - s;
            max_degree = max_degree.max(d);
            num_active += (d > 0) as u32;
        }
        Ok(Csr {
            offsets,
            targets,
            max_degree,
            num_active,
        })
    }

    /// Iterate `(from, to)` pairs in vertex order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |v| {
            self.neighbors(v as VertexId)
                .iter()
                .map(move |&t| (v as VertexId, t))
        })
    }
}

/// Append `base ∪ adds ∖ dels` to `out` — the canonical sorted-row merge
/// shared by [`Csr::rebase`] and [`crate::OverlayGraph`]'s patched
/// lists, so the subtle tie/advance invariants live in exactly one
/// place.
///
/// Preconditions (upheld by [`crate::GraphDelta::effective`] /
/// [`crate::GraphDelta::effective_by_label`]): all three inputs sorted
/// and duplicate-free, `adds` disjoint from `base`, `dels ⊆ base`, and
/// `adds` disjoint from `dels`.
pub(crate) fn merge_row_into(
    base: &[VertexId],
    adds: &[VertexId],
    dels: &[VertexId],
    out: &mut Vec<VertexId>,
) {
    let (mut bi, mut ai, mut di) = (0usize, 0usize, 0usize);
    while bi < base.len() || ai < adds.len() {
        let take_base = ai >= adds.len() || (bi < base.len() && base[bi] <= adds[ai]);
        if take_base {
            let t = base[bi];
            bi += 1;
            while di < dels.len() && dels[di] < t {
                di += 1;
            }
            if di < dels.len() && dels[di] == t {
                di += 1;
                continue; // deleted
            }
            out.push(t);
        } else {
            out.push(adds[ai]);
            ai += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_pairs(5, &[(0, 2), (0, 1), (2, 3), (4, 0), (2, 4)])
    }

    #[test]
    fn neighbors_are_sorted() {
        let c = sample();
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbors(2), &[3, 4]);
        assert_eq!(c.neighbors(1), &[] as &[VertexId]);
    }

    #[test]
    fn degree_and_membership() {
        let c = sample();
        assert_eq!(c.degree(0), 2);
        assert!(c.contains(0, 2));
        assert!(!c.contains(0, 3));
        assert_eq!(c.max_degree(), 2);
    }

    #[test]
    fn active_count_and_edge_count() {
        let c = sample();
        assert_eq!(c.num_edges(), 5);
        assert_eq!(c.num_active(), 3); // vertices 0, 2, 4
    }

    #[test]
    fn out_of_range_vertex_is_empty() {
        let c = sample();
        assert_eq!(c.neighbors(99), &[] as &[VertexId]);
        assert_eq!(c.degree(99), 0);
    }

    #[test]
    fn iter_edges_roundtrip() {
        let c = sample();
        let mut edges: Vec<_> = c.iter_edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (2, 3), (2, 4), (4, 0)]);
    }

    #[test]
    fn empty_csr() {
        let c = Csr::from_pairs(0, &[]);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.max_degree(), 0);
        assert_eq!(c.num_vertices(), 0);
    }

    #[test]
    fn active_vertices_in_order() {
        let c = sample();
        let active: Vec<_> = c.active_vertices().collect();
        assert_eq!(active, vec![0, 2, 4]);
    }

    #[test]
    fn rebase_merges_adds_and_dels() {
        let c = sample(); // 0->{1,2}, 2->{3,4}, 4->{0}
        let adds = [(0, 3), (1, 1), (4, 2)];
        let dels = [(2, 3), (4, 0)];
        let r = c.rebase(5, &adds, &dels);
        assert_eq!(r.neighbors(0), &[1, 2, 3]);
        assert_eq!(r.neighbors(1), &[1]);
        assert_eq!(r.neighbors(2), &[4]);
        assert_eq!(r.neighbors(4), &[2]);
        assert_eq!(r.num_edges(), 6);
        assert_eq!(r.max_degree(), 3);
        assert_eq!(r.num_active(), 4);
    }

    #[test]
    fn rebase_grows_the_domain() {
        let c = sample();
        let r = c.rebase(8, &[(6, 7)], &[]);
        assert_eq!(r.num_vertices(), 8);
        assert_eq!(r.neighbors(6), &[7]);
        assert_eq!(r.neighbors(0), c.neighbors(0));
        assert_eq!(r.num_edges(), c.num_edges() + 1);
    }

    #[test]
    fn rebase_empty_delta_is_identity() {
        let c = sample();
        let r = c.rebase(5, &[], &[]);
        for v in 0..5 {
            assert_eq!(r.neighbors(v), c.neighbors(v));
        }
        assert_eq!(r.max_degree(), c.max_degree());
        assert_eq!(r.num_active(), c.num_active());
    }

    #[test]
    fn rebase_can_delete_everything() {
        let c = Csr::from_pairs(3, &[(0, 1), (0, 2), (1, 2)]);
        let r = c.rebase(3, &[], &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(r.num_edges(), 0);
        assert_eq!(r.max_degree(), 0);
        assert_eq!(r.num_active(), 0);
    }

    #[test]
    fn rebase_from_empty_base() {
        let c = Csr::default();
        let r = c.rebase(3, &[(0, 2), (2, 1)], &[]);
        assert_eq!(r.neighbors(0), &[2]);
        assert_eq!(r.neighbors(2), &[1]);
        assert_eq!(r.num_edges(), 2);
    }

    #[test]
    fn neighbor_intersection_helpers() {
        let c = Csr::from_pairs(6, &[(0, 1), (0, 3), (0, 5), (2, 3), (2, 4), (2, 5)]);
        let mut out = Vec::new();
        c.intersect_neighbors_into(0, 2, &mut out);
        assert_eq!(out, vec![3, 5]);
        out.clear();
        c.intersect_with_into(0, &[1, 2, 5], &mut out);
        assert_eq!(out, vec![1, 5]);
        out.clear();
        c.intersect_neighbors_into(1, 2, &mut out); // vertex 1 has no edges
        assert!(out.is_empty());
    }
}
