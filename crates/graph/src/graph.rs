//! The edge-labeled directed graph: a set of binary relations.

use crate::csr::Csr;
use crate::{LabelId, VertexId};

/// A single labeled edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    pub src: VertexId,
    pub dst: VertexId,
    pub label: LabelId,
}

/// Immutable edge-labeled directed graph.
///
/// Conceptually this is the database `{R_0, …, R_{L-1}}` where relation
/// `R_l(src, dst)` holds the edges with label `l` (Section 2). Each relation
/// is indexed both forward (`src → dst`) and backward (`dst → src`).
#[derive(Debug, Clone, Default)]
pub struct LabeledGraph {
    num_vertices: usize,
    fwd: Vec<Csr>,
    bwd: Vec<Csr>,
}

impl LabeledGraph {
    pub(crate) fn new(num_vertices: usize, fwd: Vec<Csr>, bwd: Vec<Csr>) -> Self {
        debug_assert_eq!(fwd.len(), bwd.len());
        LabeledGraph {
            num_vertices,
            fwd,
            bwd,
        }
    }

    /// Number of vertices in the domain (vertex ids are `0..num_vertices`).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of distinct edge labels (= relations).
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.fwd.len()
    }

    /// Total number of edges across all labels.
    pub fn num_edges(&self) -> usize {
        self.fwd.iter().map(Csr::num_edges).sum()
    }

    /// Cardinality `|R_l|` of one relation.
    #[inline]
    pub fn label_count(&self, l: LabelId) -> usize {
        self.fwd.get(l as usize).map_or(0, Csr::num_edges)
    }

    /// Out-neighbours of `v` through label `l`, sorted.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId, l: LabelId) -> &[VertexId] {
        self.fwd.get(l as usize).map_or(&[], |c| c.neighbors(v))
    }

    /// In-neighbours of `v` through label `l`, sorted.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId, l: LabelId) -> &[VertexId] {
        self.bwd.get(l as usize).map_or(&[], |c| c.neighbors(v))
    }

    /// Out-degree of `v` for label `l` — `deg(src(v), R_l)` in paper terms.
    #[inline]
    pub fn out_degree(&self, v: VertexId, l: LabelId) -> usize {
        self.out_neighbors(v, l).len()
    }

    /// In-degree of `v` for label `l` — `deg(dst(v), R_l)`.
    #[inline]
    pub fn in_degree(&self, v: VertexId, l: LabelId) -> usize {
        self.in_neighbors(v, l).len()
    }

    /// True if edge `src -l-> dst` exists.
    #[inline]
    pub fn has_edge(&self, src: VertexId, dst: VertexId, l: LabelId) -> bool {
        self.fwd
            .get(l as usize)
            .is_some_and(|c| c.contains(src, dst))
    }

    /// Maximum out-degree over all vertices: `deg(src, R_l)` (maximum number
    /// of `dst` values per `src`), used by pessimistic bounds.
    pub fn max_out_degree(&self, l: LabelId) -> usize {
        self.fwd.get(l as usize).map_or(0, Csr::max_degree)
    }

    /// Maximum in-degree over all vertices: `deg(dst, R_l)`.
    pub fn max_in_degree(&self, l: LabelId) -> usize {
        self.bwd.get(l as usize).map_or(0, Csr::max_degree)
    }

    /// `|π_src R_l|` — number of distinct sources of label `l`.
    pub fn distinct_sources(&self, l: LabelId) -> usize {
        self.fwd.get(l as usize).map_or(0, Csr::num_active)
    }

    /// `|π_dst R_l|` — number of distinct destinations of label `l`.
    pub fn distinct_targets(&self, l: LabelId) -> usize {
        self.bwd.get(l as usize).map_or(0, Csr::num_active)
    }

    /// Iterate the distinct sources of label `l` (vertices with at least
    /// one out-edge under `l`), in increasing id order.
    pub fn sources(&self, l: LabelId) -> impl Iterator<Item = VertexId> + '_ {
        self.fwd
            .get(l as usize)
            .into_iter()
            .flat_map(Csr::active_vertices)
    }

    /// Iterate the distinct destinations of label `l`, in increasing id
    /// order.
    pub fn targets(&self, l: LabelId) -> impl Iterator<Item = VertexId> + '_ {
        self.bwd
            .get(l as usize)
            .into_iter()
            .flat_map(Csr::active_vertices)
    }

    /// Iterate the edges of one relation.
    pub fn edges(&self, l: LabelId) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.fwd
            .get(l as usize)
            .into_iter()
            .flat_map(Csr::iter_edges)
    }

    /// Iterate every edge in the graph.
    pub fn all_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_labels() as LabelId).flat_map(move |l| {
            self.edges(l)
                .map(move |(src, dst)| Edge { src, dst, label: l })
        })
    }

    /// Build a sub-graph keeping only edges accepted by `keep`.
    ///
    /// Used by the bound-sketch optimization, which partitions relations by
    /// hashing attribute values (Section 5.2.1).
    pub fn filter(
        &self,
        mut keep: impl FnMut(VertexId, VertexId, LabelId) -> bool,
    ) -> LabeledGraph {
        let mut b = crate::GraphBuilder::with_labels(self.num_vertices, self.num_labels());
        for e in self.all_edges() {
            if keep(e.src, e.dst, e.label) {
                b.add_edge(e.src, e.dst, e.label);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Tiny two-label graph: label 0 = {0->1, 0->2, 1->2}, label 1 = {2->0}.
    fn sample() -> LabeledGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 2, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 0, 1);
        b.build()
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_labels(), 2);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.label_count(0), 3);
        assert_eq!(g.label_count(1), 1);
    }

    #[test]
    fn neighbors_both_directions() {
        let g = sample();
        assert_eq!(g.out_neighbors(0, 0), &[1, 2]);
        assert_eq!(g.in_neighbors(2, 0), &[0, 1]);
        assert_eq!(g.in_neighbors(0, 1), &[2]);
    }

    #[test]
    fn degrees() {
        let g = sample();
        assert_eq!(g.out_degree(0, 0), 2);
        assert_eq!(g.in_degree(2, 0), 2);
        assert_eq!(g.max_out_degree(0), 2);
        assert_eq!(g.max_in_degree(0), 2);
        assert_eq!(g.max_out_degree(1), 1);
    }

    #[test]
    fn projections() {
        let g = sample();
        assert_eq!(g.distinct_sources(0), 2); // 0 and 1
        assert_eq!(g.distinct_targets(0), 2); // 1 and 2
        assert_eq!(g.sources(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(g.targets(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(g.sources(9).count(), 0);
    }

    #[test]
    fn has_edge_checks_label() {
        let g = sample();
        assert!(g.has_edge(0, 1, 0));
        assert!(!g.has_edge(0, 1, 1));
        assert!(!g.has_edge(1, 0, 0));
    }

    #[test]
    fn filter_keeps_subset() {
        let g = sample();
        let f = g.filter(|s, _, _| s == 0);
        assert_eq!(f.num_edges(), 2);
        assert_eq!(f.num_vertices(), 3);
        assert!(f.has_edge(0, 1, 0));
        assert!(!f.has_edge(1, 2, 0));
    }

    #[test]
    fn all_edges_covers_every_label() {
        let g = sample();
        let mut es: Vec<_> = g.all_edges().collect();
        es.sort();
        assert_eq!(es.len(), 4);
        assert_eq!(es.last().unwrap().label, 1);
    }

    #[test]
    fn unknown_label_is_empty() {
        let g = sample();
        assert_eq!(g.label_count(9), 0);
        assert_eq!(g.out_neighbors(0, 9), &[] as &[VertexId]);
    }
}
