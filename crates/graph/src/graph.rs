//! The edge-labeled directed graph: a set of binary relations.

use std::sync::Arc;

use crate::csr::Csr;
use crate::delta::GraphDelta;
use crate::{LabelId, VertexId};

/// A single labeled edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    pub src: VertexId,
    pub dst: VertexId,
    pub label: LabelId,
}

/// Immutable edge-labeled directed graph.
///
/// Conceptually this is the database `{R_0, …, R_{L-1}}` where relation
/// `R_l(src, dst)` holds the edges with label `l` (Section 2). Each relation
/// is indexed both forward (`src → dst`) and backward (`dst → src`).
///
/// Relations are held behind `Arc` so that [`LabeledGraph::rebase`] can
/// produce a successor graph rebuilding only the relations a delta
/// touches, sharing the untouched indexes byte-for-byte.
#[derive(Debug, Clone, Default)]
pub struct LabeledGraph {
    num_vertices: usize,
    fwd: Vec<Arc<Csr>>,
    bwd: Vec<Arc<Csr>>,
}

impl LabeledGraph {
    pub(crate) fn new(num_vertices: usize, fwd: Vec<Csr>, bwd: Vec<Csr>) -> Self {
        debug_assert_eq!(fwd.len(), bwd.len());
        LabeledGraph {
            num_vertices,
            fwd: fwd.into_iter().map(Arc::new).collect(),
            bwd: bwd.into_iter().map(Arc::new).collect(),
        }
    }

    /// Assemble a graph directly from per-label CSR pairs (the binary
    /// snapshot codec's constructor; the CSRs are already validated by
    /// [`Csr::from_raw_parts`]). A relation's domain may be smaller than
    /// `num_vertices`: [`LabeledGraph::rebase`] leaves untouched relations
    /// at their original domain, and every accessor tolerates that.
    pub(crate) fn from_csr_pairs(num_vertices: usize, pairs: Vec<(Csr, Csr)>) -> Self {
        let (fwd, bwd) = pairs.into_iter().unzip();
        LabeledGraph::new(num_vertices, fwd, bwd)
    }

    /// The per-label CSR pairs `(forward, backward)`, for binary
    /// persistence.
    pub(crate) fn csr_pairs(&self) -> impl Iterator<Item = (&Csr, &Csr)> {
        self.fwd.iter().zip(&self.bwd).map(|(f, b)| (&**f, &**b))
    }

    /// Number of vertices in the domain (vertex ids are `0..num_vertices`).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of distinct edge labels (= relations).
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.fwd.len()
    }

    /// Total number of edges across all labels.
    pub fn num_edges(&self) -> usize {
        self.fwd.iter().map(|c| c.num_edges()).sum()
    }

    /// Cardinality `|R_l|` of one relation.
    #[inline]
    pub fn label_count(&self, l: LabelId) -> usize {
        self.fwd.get(l as usize).map_or(0, |c| c.num_edges())
    }

    /// Out-neighbours of `v` through label `l`, sorted.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId, l: LabelId) -> &[VertexId] {
        self.fwd.get(l as usize).map_or(&[], |c| c.neighbors(v))
    }

    /// In-neighbours of `v` through label `l`, sorted.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId, l: LabelId) -> &[VertexId] {
        self.bwd.get(l as usize).map_or(&[], |c| c.neighbors(v))
    }

    /// Out-degree of `v` for label `l` — `deg(src(v), R_l)` in paper terms.
    #[inline]
    pub fn out_degree(&self, v: VertexId, l: LabelId) -> usize {
        self.out_neighbors(v, l).len()
    }

    /// In-degree of `v` for label `l` — `deg(dst(v), R_l)`.
    #[inline]
    pub fn in_degree(&self, v: VertexId, l: LabelId) -> usize {
        self.in_neighbors(v, l).len()
    }

    /// True if edge `src -l-> dst` exists.
    #[inline]
    pub fn has_edge(&self, src: VertexId, dst: VertexId, l: LabelId) -> bool {
        self.fwd
            .get(l as usize)
            .is_some_and(|c| c.contains(src, dst))
    }

    /// Maximum out-degree over all vertices: `deg(src, R_l)` (maximum number
    /// of `dst` values per `src`), used by pessimistic bounds.
    pub fn max_out_degree(&self, l: LabelId) -> usize {
        self.fwd.get(l as usize).map_or(0, |c| c.max_degree())
    }

    /// Maximum in-degree over all vertices: `deg(dst, R_l)`.
    pub fn max_in_degree(&self, l: LabelId) -> usize {
        self.bwd.get(l as usize).map_or(0, |c| c.max_degree())
    }

    /// `|π_src R_l|` — number of distinct sources of label `l`.
    pub fn distinct_sources(&self, l: LabelId) -> usize {
        self.fwd.get(l as usize).map_or(0, |c| c.num_active())
    }

    /// `|π_dst R_l|` — number of distinct destinations of label `l`.
    pub fn distinct_targets(&self, l: LabelId) -> usize {
        self.bwd.get(l as usize).map_or(0, |c| c.num_active())
    }

    /// Iterate the distinct sources of label `l` (vertices with at least
    /// one out-edge under `l`), in increasing id order.
    pub fn sources(&self, l: LabelId) -> impl Iterator<Item = VertexId> + '_ {
        self.fwd
            .get(l as usize)
            .into_iter()
            .flat_map(|c| c.active_vertices())
    }

    /// Iterate the distinct destinations of label `l`, in increasing id
    /// order.
    pub fn targets(&self, l: LabelId) -> impl Iterator<Item = VertexId> + '_ {
        self.bwd
            .get(l as usize)
            .into_iter()
            .flat_map(|c| c.active_vertices())
    }

    /// Iterate the edges of one relation.
    pub fn edges(&self, l: LabelId) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.fwd
            .get(l as usize)
            .into_iter()
            .flat_map(|c| c.iter_edges())
    }

    /// Iterate every edge in the graph.
    pub fn all_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_labels() as LabelId).flat_map(move |l| {
            self.edges(l)
                .map(move |(src, dst)| Edge { src, dst, label: l })
        })
    }

    /// Build a sub-graph keeping only edges accepted by `keep`.
    ///
    /// Used by the bound-sketch optimization, which partitions relations by
    /// hashing attribute values (Section 5.2.1).
    pub fn filter(
        &self,
        mut keep: impl FnMut(VertexId, VertexId, LabelId) -> bool,
    ) -> LabeledGraph {
        let mut b = crate::GraphBuilder::with_labels(self.num_vertices, self.num_labels());
        for e in self.all_edges() {
            if keep(e.src, e.dst, e.label) {
                b.add_edge(e.src, e.dst, e.label);
            }
        }
        b.build()
    }

    /// Fold `delta` into a fresh graph. Only the relations the delta
    /// touches are rebuilt ([`Csr::rebase`], one O(|R_l| + |delta_l|)
    /// merge walk per direction); every other relation is shared with
    /// `self` via `Arc`, so rebasing a small delta over a large graph
    /// costs only the touched relations. The domain grows to cover any
    /// new vertex or label ids the delta mentions.
    pub fn rebase(&self, delta: &GraphDelta) -> LabeledGraph {
        let num_vertices = self
            .num_vertices
            .max(delta.max_vertex().map_or(0, |v| v as usize + 1));
        let num_labels = self
            .num_labels()
            .max(delta.max_label().map_or(0, |l| l as usize + 1));
        let mut fwd = self.fwd.clone();
        let mut bwd = self.bwd.clone();
        fwd.resize_with(num_labels, Default::default);
        bwd.resize_with(num_labels, Default::default);
        // One pass groups the effective delta per label (O(|delta| log),
        // not O(touched_labels × |delta|)); each forward group inherits
        // its (src, dst) order from the delta's (src, dst, label)
        // iteration order.
        for (l, (adds, dels)) in delta.effective_by_label(self) {
            let li = l as usize;
            fwd[li] = Arc::new(fwd[li].rebase(num_vertices, &adds, &dels));
            let rev = |ps: &[(VertexId, VertexId)]| {
                let mut r: Vec<(VertexId, VertexId)> = ps.iter().map(|&(s, d)| (d, s)).collect();
                r.sort_unstable();
                r
            };
            bwd[li] = Arc::new(bwd[li].rebase(num_vertices, &rev(&adds), &rev(&dels)));
        }
        LabeledGraph {
            num_vertices,
            fwd,
            bwd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Tiny two-label graph: label 0 = {0->1, 0->2, 1->2}, label 1 = {2->0}.
    fn sample() -> LabeledGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 2, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 0, 1);
        b.build()
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_labels(), 2);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.label_count(0), 3);
        assert_eq!(g.label_count(1), 1);
    }

    #[test]
    fn neighbors_both_directions() {
        let g = sample();
        assert_eq!(g.out_neighbors(0, 0), &[1, 2]);
        assert_eq!(g.in_neighbors(2, 0), &[0, 1]);
        assert_eq!(g.in_neighbors(0, 1), &[2]);
    }

    #[test]
    fn degrees() {
        let g = sample();
        assert_eq!(g.out_degree(0, 0), 2);
        assert_eq!(g.in_degree(2, 0), 2);
        assert_eq!(g.max_out_degree(0), 2);
        assert_eq!(g.max_in_degree(0), 2);
        assert_eq!(g.max_out_degree(1), 1);
    }

    #[test]
    fn projections() {
        let g = sample();
        assert_eq!(g.distinct_sources(0), 2); // 0 and 1
        assert_eq!(g.distinct_targets(0), 2); // 1 and 2
        assert_eq!(g.sources(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(g.targets(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(g.sources(9).count(), 0);
    }

    #[test]
    fn has_edge_checks_label() {
        let g = sample();
        assert!(g.has_edge(0, 1, 0));
        assert!(!g.has_edge(0, 1, 1));
        assert!(!g.has_edge(1, 0, 0));
    }

    #[test]
    fn filter_keeps_subset() {
        let g = sample();
        let f = g.filter(|s, _, _| s == 0);
        assert_eq!(f.num_edges(), 2);
        assert_eq!(f.num_vertices(), 3);
        assert!(f.has_edge(0, 1, 0));
        assert!(!f.has_edge(1, 2, 0));
    }

    #[test]
    fn all_edges_covers_every_label() {
        let g = sample();
        let mut es: Vec<_> = g.all_edges().collect();
        es.sort();
        assert_eq!(es.len(), 4);
        assert_eq!(es.last().unwrap().label, 1);
    }

    #[test]
    fn rebase_applies_delta_and_shares_untouched_relations() {
        let g = sample();
        let mut d = GraphDelta::new();
        d.add_edge(2, 1, 0);
        d.del_edge(0, 1, 0);
        let r = g.rebase(&d);
        assert!(r.has_edge(2, 1, 0));
        assert!(!r.has_edge(0, 1, 0));
        assert_eq!(r.num_edges(), g.num_edges());
        // label 1 untouched: the CSR is the same allocation.
        assert!(Arc::ptr_eq(&g.fwd[1], &r.fwd[1]));
        assert!(!Arc::ptr_eq(&g.fwd[0], &r.fwd[0]));
        // forward and backward indexes stay consistent.
        assert_eq!(r.in_neighbors(1, 0), &[2]);
        assert_eq!(r.out_neighbors(0, 0), &[2]);
    }

    #[test]
    fn rebase_grows_domain_and_labels() {
        let g = sample();
        let mut d = GraphDelta::new();
        d.add_edge(5, 6, 4);
        let r = g.rebase(&d);
        assert_eq!(r.num_vertices(), 7);
        assert_eq!(r.num_labels(), 5);
        assert!(r.has_edge(5, 6, 4));
        assert_eq!(r.label_count(0), g.label_count(0));
        assert_eq!(r.in_neighbors(6, 4), &[5]);
    }

    #[test]
    fn rebase_matches_rebuild_from_edge_list() {
        let g = sample();
        let mut d = GraphDelta::new();
        d.del_edge(1, 2, 0);
        d.add_edge(1, 0, 1);
        d.add_edge(0, 1, 0); // no-op: already present
        let r = g.rebase(&d);
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 2, 0);
        b.add_edge(2, 0, 1);
        b.add_edge(1, 0, 1);
        let want = b.build();
        assert_eq!(r.num_edges(), want.num_edges());
        for e in want.all_edges() {
            assert!(r.has_edge(e.src, e.dst, e.label), "{e:?}");
        }
        assert_eq!(r.distinct_sources(1), want.distinct_sources(1));
        assert_eq!(r.max_in_degree(0), want.max_in_degree(0));
    }

    #[test]
    fn unknown_label_is_empty() {
        let g = sample();
        assert_eq!(g.label_count(9), 0);
        assert_eq!(g.out_neighbors(0, 9), &[] as &[VertexId]);
    }
}
