//! The commit write-ahead log: an append-only `.cegwal` record log that
//! makes an acked `COMMITTED` reply survive a crash.
//!
//! The file reuses the `.cegsnap` section idiom (see
//! [`crate::snapshot`]) — a fixed header followed by checksummed,
//! length-prefixed records:
//!
//! ```text
//! magic   8 bytes  b"CEGWAL\0\0"
//! version u32 LE   format version (currently 1)
//! record*:
//!   tag      4 bytes   b"BEGN" | b"EOPS" | b"CMIT" | future tags
//!   len      u64 LE    payload length in bytes
//!   payload  len bytes
//!   checksum u64 LE    length-seeded FxHash64 of tag + payload
//! ```
//!
//! Unlike a snapshot section, the record checksum covers the **tag**
//! too: a snapshot reader cross-checks its required-section set, but
//! the WAL's only integrity story is the per-record checksum, and a
//! bit-flipped tag must stop the scan rather than silently reclassify
//! a record (e.g. turning `EOPS` into an ignorable unknown tag and
//! committing a transaction without its operations).
//!
//! One committed transaction is the record run `BEGN(epoch)`,
//! `EOPS(ops)`, `CMIT(epoch)` — the *effective* edge operations a
//! commit applied, stamped with the epoch that commit produced. The
//! writer appends all three records with one buffered write and one
//! `fdatasync` per commit (fsync batched per `COMMIT`, never per op),
//! and only after the sync returns does the server ack.
//!
//! Reading is **prefix recovery**, not all-or-nothing like a snapshot:
//! a crash legitimately leaves a torn or half-written tail, so
//! [`scan`] walks records until the first sign of damage (truncation,
//! checksum mismatch, a malformed payload, an out-of-order record, an
//! epoch regression) and returns every transaction whose `CMIT` landed
//! before it, plus the byte offset at which the file stops being
//! trustworthy ([`WalScan::valid_len`]) and a human-readable diagnosis.
//! A transaction missing its `CMIT` is *not* returned — its commit was
//! never acked. Unknown record tags with valid checksums are skipped
//! (same forward-compatibility rule as snapshot sections). Damage is
//! never a panic, and a hostile length field can never force an
//! allocation: the scanner only slices bytes that are actually present.
//!
//! [`scan`]: scan_bytes

use std::io;
use std::path::{Path, PathBuf};

use crate::vfs::{Storage, StorageFile};
use crate::{LabelId, VertexId};

/// File magic: identifies a `.cegwal` log.
pub const WAL_MAGIC: [u8; 8] = *b"CEGWAL\0\0";

/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

/// Header length: magic + version.
pub const WAL_HEADER_LEN: u64 = 12;

/// Record tag: transaction start, payload = `u64` epoch.
pub const TAG_BEGIN: [u8; 4] = *b"BEGN";

/// Record tag: edge-operation run, payload = `u32` count + ops.
pub const TAG_OPS: [u8; 4] = *b"EOPS";

/// Record tag: transaction commit, payload = `u64` epoch (must equal
/// the opening `BEGN`'s).
pub const TAG_COMMIT: [u8; 4] = *b"CMIT";

/// Encoded size of one edge operation: flags(1) + src(4) + dst(4) +
/// label(2).
const OP_BYTES: usize = 11;

/// One logged edge operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOp {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge label.
    pub label: LabelId,
    /// True for a deletion, false for an insertion.
    pub del: bool,
}

/// One committed transaction recovered from (or appended to) the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalTx {
    /// The epoch this commit produced.
    pub epoch: u64,
    /// The effective edge operations the commit applied.
    pub ops: Vec<WalOp>,
}

/// What a [`scan_bytes`] recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Complete (`CMIT`-terminated) transactions, in log order.
    pub txs: Vec<WalTx>,
    /// Bytes of the file that are trustworthy: the header plus every
    /// record up to and including the last complete transaction.
    /// Re-opening for append truncates the file here. `0` means even
    /// the header is torn (a crash during creation).
    pub valid_len: u64,
    /// Raw records scanned successfully (incl. skipped unknown tags).
    pub records: usize,
    /// Why scanning stopped before the end of the file; `None` when
    /// every byte was consumed cleanly.
    pub diagnosis: Option<String>,
}

impl WalScan {
    /// Highest committed epoch in the log, if any transaction survived.
    pub fn last_epoch(&self) -> Option<u64> {
        self.txs.last().map(|t| t.epoch)
    }
}

/// The 12-byte header a fresh log starts with.
pub fn header_bytes() -> [u8; WAL_HEADER_LEN as usize] {
    let mut h = [0u8; WAL_HEADER_LEN as usize];
    h[..8].copy_from_slice(&WAL_MAGIC);
    h[8..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// Record checksum: the same length-seeded FxHash64 as
/// [`crate::snapshot::section_checksum`], but folding in the tag (see
/// the module docs for why).
pub fn record_checksum(tag: [u8; 4], payload: &[u8]) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::hash::FxHasher::default();
    h.write_u64(payload.len() as u64);
    h.write(&tag);
    h.write(payload);
    h.finish()
}

fn put_record(out: &mut Vec<u8>, tag: [u8; 4], payload: &[u8]) {
    out.extend_from_slice(&tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&record_checksum(tag, payload).to_le_bytes());
}

/// Encode one transaction as its three records (no header).
pub fn encode_tx(epoch: u64, ops: &[WalOp]) -> Vec<u8> {
    let mut body = Vec::with_capacity(4 + ops.len() * OP_BYTES);
    body.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        body.push(op.del as u8);
        body.extend_from_slice(&op.src.to_le_bytes());
        body.extend_from_slice(&op.dst.to_le_bytes());
        body.extend_from_slice(&op.label.to_le_bytes());
    }
    let mut out = Vec::with_capacity(3 * 24 + body.len());
    put_record(&mut out, TAG_BEGIN, &epoch.to_le_bytes());
    put_record(&mut out, TAG_OPS, &body);
    put_record(&mut out, TAG_COMMIT, &epoch.to_le_bytes());
    out
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn decode_u64(payload: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(payload.try_into().ok()?))
}

fn decode_ops(payload: &[u8]) -> Option<Vec<WalOp>> {
    let count = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?) as usize;
    let body = &payload[4..];
    if body.len() != count.checked_mul(OP_BYTES)? {
        return None;
    }
    let mut ops = Vec::with_capacity(count);
    for chunk in body.chunks_exact(OP_BYTES) {
        if chunk[0] > 1 {
            return None; // flags other than the del bit are not in v1
        }
        ops.push(WalOp {
            del: chunk[0] == 1,
            src: u32::from_le_bytes(chunk[1..5].try_into().unwrap()),
            dst: u32::from_le_bytes(chunk[5..9].try_into().unwrap()),
            label: u16::from_le_bytes(chunk[9..11].try_into().unwrap()),
        });
    }
    Some(ops)
}

/// Scan a `.cegwal` image, recovering the valid committed-transaction
/// prefix. Damage mid-log is a *diagnosis*, not an error — that is the
/// normal post-crash state. The only `Err` is a file that is not a WAL
/// at all: a complete header with the wrong magic or an unsupported
/// version (truncated headers are a crash during creation and scan to
/// an empty log with `valid_len == 0`).
pub fn scan_bytes(bytes: &[u8]) -> io::Result<WalScan> {
    let header = header_bytes();
    if bytes.len() < header.len() {
        if header.starts_with(bytes) {
            return Ok(WalScan {
                txs: Vec::new(),
                valid_len: 0,
                records: 0,
                diagnosis: Some("torn header (crash during log creation)".into()),
            });
        }
        return Err(bad("not a WAL: file shorter than the header"));
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(bad("not a WAL: bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(bad(format!(
            "WAL format version {version} is not supported (this build reads {WAL_VERSION})"
        )));
    }

    let mut scan = WalScan {
        txs: Vec::new(),
        valid_len: WAL_HEADER_LEN,
        records: 0,
        diagnosis: None,
    };
    // The transaction being assembled: Some((epoch, ops)) between a
    // BEGN and its CMIT.
    let mut open: Option<(u64, Vec<WalOp>)> = None;
    let mut off = WAL_HEADER_LEN as usize;
    let stop = |scan: &mut WalScan, msg: String| scan.diagnosis = Some(msg);
    loop {
        if off == bytes.len() {
            if open.is_some() {
                stop(
                    &mut scan,
                    "log ends inside a transaction (commit was never acked)".into(),
                );
            }
            return Ok(scan);
        }
        let rest = &bytes[off..];
        if rest.len() < 12 {
            stop(&mut scan, format!("torn record header at byte {off}"));
            return Ok(scan);
        }
        let tag: [u8; 4] = rest[..4].try_into().unwrap();
        let len = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        // A hostile or torn length cannot allocate or index past the
        // bytes that exist.
        let Some(record_end) = len
            .checked_add(20)
            .filter(|&end| end <= rest.len() as u64)
            .map(|end| end as usize)
        else {
            stop(
                &mut scan,
                format!("record at byte {off} overruns the file (len={len})"),
            );
            return Ok(scan);
        };
        let payload = &rest[12..12 + len as usize];
        let checksum = u64::from_le_bytes(rest[record_end - 8..record_end].try_into().unwrap());
        if checksum != record_checksum(tag, payload) {
            stop(&mut scan, format!("checksum mismatch at byte {off}"));
            return Ok(scan);
        }
        scan.records += 1;
        match tag {
            TAG_BEGIN => {
                if open.is_some() {
                    stop(
                        &mut scan,
                        format!("BEGN inside an open transaction at byte {off}"),
                    );
                    return Ok(scan);
                }
                let Some(epoch) = decode_u64(payload) else {
                    stop(&mut scan, format!("malformed BEGN payload at byte {off}"));
                    return Ok(scan);
                };
                if scan.txs.last().is_some_and(|t| epoch <= t.epoch) {
                    stop(&mut scan, format!("epoch regression at byte {off}"));
                    return Ok(scan);
                }
                open = Some((epoch, Vec::new()));
            }
            TAG_OPS => {
                let Some((_, ops)) = open.as_mut() else {
                    stop(
                        &mut scan,
                        format!("EOPS outside a transaction at byte {off}"),
                    );
                    return Ok(scan);
                };
                let Some(mut decoded) = decode_ops(payload) else {
                    stop(&mut scan, format!("malformed EOPS payload at byte {off}"));
                    return Ok(scan);
                };
                ops.append(&mut decoded);
            }
            TAG_COMMIT => {
                let Some((epoch, ops)) = open.take() else {
                    stop(
                        &mut scan,
                        format!("CMIT outside a transaction at byte {off}"),
                    );
                    return Ok(scan);
                };
                if decode_u64(payload) != Some(epoch) {
                    stop(
                        &mut scan,
                        format!("CMIT epoch does not match its BEGN at byte {off}"),
                    );
                    return Ok(scan);
                }
                scan.txs.push(WalTx { epoch, ops });
                scan.valid_len = (off + record_end) as u64;
            }
            _ => {
                // Unknown tag with a valid checksum: a future record
                // kind. Skip it, but only count it durable once a CMIT
                // follows (valid_len does not advance here).
            }
        }
        off += record_end;
    }
}

/// Append handle to a dataset's `.cegwal`, always opened through
/// [`WalWriter::open`] so a torn tail is physically truncated before
/// any new record can land after it.
pub struct WalWriter {
    file: Box<dyn StorageFile>,
    path: PathBuf,
    len: u64,
}

impl WalWriter {
    /// Open (creating if missing) the log at `path` for appending.
    /// Existing bytes are scanned first; everything past the valid
    /// committed prefix — a torn tail — is truncated away, so the
    /// returned [`WalScan`] is exactly what a replay must apply and the
    /// on-disk file ends where new appends begin.
    pub fn open(storage: &dyn Storage, path: &Path) -> io::Result<(WalWriter, WalScan)> {
        let scan = if storage.exists(path) {
            let bytes = storage.read(path)?;
            let scan = scan_bytes(&bytes)?;
            if scan.valid_len < bytes.len() as u64 && scan.valid_len > 0 {
                storage.truncate(path, scan.valid_len)?;
            }
            scan
        } else {
            WalScan {
                txs: Vec::new(),
                valid_len: 0,
                records: 0,
                diagnosis: None,
            }
        };
        let (file, len) = if scan.valid_len == 0 {
            // Missing, or so torn even the header is incomplete: start
            // a fresh log (there is nothing to preserve — no complete
            // record ever hit the disk).
            let mut file = storage.create(path)?;
            file.write_all(&header_bytes())?;
            file.sync()?;
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                storage.sync_dir(dir)?;
            }
            (file, WAL_HEADER_LEN)
        } else {
            (storage.append(path)?, scan.valid_len)
        };
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                len,
            },
            scan,
        ))
    }

    /// Append one transaction and sync it to disk: one buffered write,
    /// one `fdatasync`. Returns the bytes appended. After an `Ok` the
    /// commit is durable and may be acked; after an `Err` the caller
    /// must treat the commit as failed (the file may hold a torn tail,
    /// which the next [`WalWriter::open`] truncates).
    pub fn append_tx(&mut self, epoch: u64, ops: &[WalOp]) -> io::Result<u64> {
        let bytes = encode_tx(epoch, ops);
        self.file.write_all(&bytes)?;
        self.file.sync()?;
        self.len += bytes.len() as u64;
        Ok(bytes.len() as u64)
    }

    /// Current log length in bytes (header included) — the rotation
    /// trigger compares this against `wal_rotate_bytes`.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no transactions (header only).
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN
    }

    /// Reset the log to an empty header after its transactions were
    /// folded into a snapshot. The truncate happens through `storage`
    /// and the handle is re-opened, so a crash at any point leaves
    /// either the old log (replay skips its pre-snapshot epochs) or the
    /// fresh empty one.
    pub fn reset(&mut self, storage: &dyn Storage) -> io::Result<()> {
        storage.truncate(&self.path, WAL_HEADER_LEN)?;
        self.file = storage.append(&self.path)?;
        self.len = WAL_HEADER_LEN;
        Ok(())
    }

    /// Cut a torn tail left by a failed [`WalWriter::append_tx`]: the
    /// file is truncated back to the last durable record boundary and
    /// the append handle re-opened. Until this succeeds the writer must
    /// not append again — a new record landing after torn bytes would be
    /// unreachable to the recovery scan, silently losing an acked
    /// commit.
    pub fn repair(&mut self, storage: &dyn Storage) -> io::Result<()> {
        storage.truncate(&self.path, self.len)?;
        self.file = storage.append(&self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FaultStorage;

    fn ops(n: u64) -> Vec<WalOp> {
        (0..n)
            .map(|i| WalOp {
                src: i as u32,
                dst: (i + 1) as u32,
                label: (i % 3) as u16,
                del: i % 2 == 1,
            })
            .collect()
    }

    fn full_log(txs: &[(u64, u64)]) -> Vec<u8> {
        let mut bytes = header_bytes().to_vec();
        for &(epoch, n) in txs {
            bytes.extend(encode_tx(epoch, &ops(n)));
        }
        bytes
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let bytes = full_log(&[(1, 3), (2, 0), (5, 7)]);
        let scan = scan_bytes(&bytes).unwrap();
        assert_eq!(scan.diagnosis, None);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.records, 9);
        assert_eq!(scan.last_epoch(), Some(5));
        let mut re = header_bytes().to_vec();
        for tx in &scan.txs {
            re.extend(encode_tx(tx.epoch, &tx.ops));
        }
        assert_eq!(re, bytes);
    }

    #[test]
    fn empty_log_scans_clean() {
        let scan = scan_bytes(&header_bytes()).unwrap();
        assert!(scan.txs.is_empty());
        assert_eq!(scan.valid_len, WAL_HEADER_LEN);
        assert_eq!(scan.diagnosis, None);
    }

    #[test]
    fn every_truncation_recovers_a_tx_prefix() {
        let txs = [(1u64, 2u64), (2, 1), (3, 4)];
        let bytes = full_log(&txs);
        let clean = scan_bytes(&bytes).unwrap();
        // Boundaries where a cut is *not* damage: exactly at the end of
        // a committed transaction (or the bare header).
        for cut in 0..bytes.len() {
            let scan = scan_bytes(&bytes[..cut]).unwrap();
            assert!(
                scan.txs.len() <= clean.txs.len(),
                "cut={cut} grew transactions"
            );
            assert_eq!(
                scan.txs,
                clean.txs[..scan.txs.len()],
                "cut={cut} is not a prefix"
            );
            assert!(scan.valid_len <= cut as u64, "cut={cut}");
            // Sub-header cuts scan to valid_len 0 but still carry the
            // torn-header diagnosis.
            let at_boundary = scan.valid_len == cut as u64 && cut >= WAL_HEADER_LEN as usize;
            assert_eq!(
                scan.diagnosis.is_none(),
                at_boundary,
                "cut={cut}: diagnosis iff mid-record/mid-tx"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_recovers_a_tx_prefix() {
        let bytes = full_log(&[(1, 2), (2, 1), (7, 3)]);
        let clean = scan_bytes(&bytes).unwrap();
        for idx in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[idx] ^= 0x01;
            let Ok(scan) = scan_bytes(&flipped) else {
                assert!(
                    idx < WAL_HEADER_LEN as usize,
                    "flip at {idx} rejected header-style"
                );
                continue;
            };
            assert_eq!(
                scan.txs,
                clean.txs[..scan.txs.len()],
                "flip at {idx} is not a prefix"
            );
        }
    }

    #[test]
    fn missing_commit_record_drops_the_open_transaction() {
        let mut bytes = header_bytes().to_vec();
        bytes.extend(encode_tx(1, &ops(2)));
        let keep = bytes.len();
        bytes.extend(encode_tx(2, &ops(1)));
        // Chop the CMIT record (28 bytes: tag+len+8-byte payload+sum).
        bytes.truncate(bytes.len() - 28);
        let scan = scan_bytes(&bytes).unwrap();
        assert_eq!(scan.txs.len(), 1);
        assert_eq!(scan.valid_len, keep as u64);
        assert!(scan.diagnosis.unwrap().contains("never acked"));
    }

    #[test]
    fn hostile_length_cannot_allocate_or_panic() {
        let mut bytes = header_bytes().to_vec();
        bytes.extend(TAG_BEGIN);
        bytes.extend(u64::MAX.to_le_bytes());
        bytes.extend([0xAA; 16]);
        let scan = scan_bytes(&bytes).unwrap();
        assert!(scan.txs.is_empty());
        assert!(scan.diagnosis.unwrap().contains("overruns"));
    }

    #[test]
    fn epoch_regression_and_order_violations_stop_the_scan() {
        // CMIT with no BEGN.
        let mut bytes = header_bytes().to_vec();
        put_record(&mut bytes, TAG_COMMIT, &1u64.to_le_bytes());
        assert!(scan_bytes(&bytes)
            .unwrap()
            .diagnosis
            .unwrap()
            .contains("outside a transaction"));
        // Epoch going backwards between transactions.
        let mut bytes = full_log(&[(5, 1)]);
        bytes.extend(encode_tx(5, &ops(1)));
        let scan = scan_bytes(&bytes).unwrap();
        assert_eq!(scan.txs.len(), 1);
        assert!(scan.diagnosis.unwrap().contains("epoch regression"));
    }

    #[test]
    fn unknown_tags_are_skipped() {
        let mut bytes = header_bytes().to_vec();
        bytes.extend(encode_tx(1, &ops(1)));
        put_record(&mut bytes, *b"XTRA", b"future payload");
        bytes.extend(encode_tx(2, &ops(2)));
        let scan = scan_bytes(&bytes).unwrap();
        assert_eq!(scan.txs.len(), 2);
        assert_eq!(scan.diagnosis, None);
        assert_eq!(scan.valid_len, bytes.len() as u64);
    }

    #[test]
    fn non_wal_files_are_errors_not_empty_scans() {
        assert!(scan_bytes(b"CEGSNAP\0junkjunk").is_err());
        let mut wrong_version = header_bytes().to_vec();
        wrong_version[8] = 9;
        assert!(scan_bytes(&wrong_version).is_err());
        // A strict prefix of the correct header is a torn creation.
        let scan = scan_bytes(&header_bytes()[..5]).unwrap();
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn writer_creates_appends_and_truncates_torn_tails() {
        let fs = FaultStorage::new();
        let path = Path::new("/wal/ds.cegwal");
        let (mut w, scan) = WalWriter::open(&fs, path).unwrap();
        assert!(scan.txs.is_empty() && w.is_empty());
        w.append_tx(1, &ops(2)).unwrap();
        w.append_tx(2, &ops(1)).unwrap();
        assert_eq!(w.len(), fs.len(path).unwrap());
        drop(w);

        // Tear the tail: append half a transaction's bytes by hand.
        let tail = encode_tx(3, &ops(2));
        let mut bytes = fs.dump(path).unwrap();
        bytes.extend(&tail[..tail.len() / 2]);
        fs.install(path, bytes);

        let (w, scan) = WalWriter::open(&fs, path).unwrap();
        assert_eq!(scan.txs.len(), 2);
        assert!(scan.diagnosis.is_some());
        assert_eq!(
            fs.len(path).unwrap(),
            scan.valid_len,
            "torn tail must be physically gone"
        );
        assert_eq!(w.len(), scan.valid_len);
        drop(w);

        // Re-open after clean truncation: no diagnosis.
        let (_, scan) = WalWriter::open(&fs, path).unwrap();
        assert_eq!(scan.diagnosis, None);
        assert_eq!(scan.txs.len(), 2);
    }

    #[test]
    fn writer_reset_leaves_an_empty_valid_log() {
        let fs = FaultStorage::new();
        let path = Path::new("/wal/ds.cegwal");
        let (mut w, _) = WalWriter::open(&fs, path).unwrap();
        w.append_tx(1, &ops(3)).unwrap();
        assert!(!w.is_empty());
        w.reset(&fs).unwrap();
        assert!(w.is_empty());
        w.append_tx(2, &ops(1)).unwrap();
        drop(w);
        let (_, scan) = WalWriter::open(&fs, path).unwrap();
        assert_eq!(scan.txs.len(), 1);
        assert_eq!(scan.last_epoch(), Some(2));
    }

    #[test]
    fn writer_restarts_a_log_with_a_torn_header() {
        let fs = FaultStorage::new();
        let path = Path::new("/wal/ds.cegwal");
        fs.install(path, header_bytes()[..7].to_vec());
        let (mut w, scan) = WalWriter::open(&fs, path).unwrap();
        assert!(scan.txs.is_empty());
        w.append_tx(1, &ops(1)).unwrap();
        drop(w);
        let (_, scan) = WalWriter::open(&fs, path).unwrap();
        assert_eq!(scan.txs.len(), 1);
        assert_eq!(scan.diagnosis, None);
    }

    #[test]
    fn failed_append_surfaces_and_recovery_drops_the_torn_tx() {
        use crate::vfs::FaultPlan;
        let fs = FaultStorage::new();
        let path = Path::new("/wal/ds.cegwal");
        let (mut w, _) = WalWriter::open(&fs, path).unwrap();
        w.append_tx(1, &ops(2)).unwrap();
        // Crash on the next write: half the tx bytes land, no sync.
        let crash_at = fs.op_count();
        fs.set_plan(FaultPlan {
            crash_after: Some(crash_at),
            ..Default::default()
        });
        assert!(w.append_tx(2, &ops(2)).is_err());
        drop(w);
        fs.reboot(usize::MAX); // even if every torn byte survives...
        let (_, scan) = WalWriter::open(&fs, path).unwrap();
        assert_eq!(scan.txs.len(), 1, "...the unacked tx must not replay");
        assert_eq!(scan.last_epoch(), Some(1));
    }
}
