//! Read-only graph access abstraction.
//!
//! The counting kernel (`ceg-exec`) only ever *reads* a graph: sorted
//! neighbour slices, degree aggregates, label cardinalities and endpoint
//! projections. [`GraphView`] captures exactly that surface so the kernel
//! runs unmodified on either the immutable CSR representation
//! ([`crate::LabeledGraph`]) or a base-plus-delta overlay
//! ([`crate::OverlayGraph`]) while a live service absorbs updates.

use crate::{LabelId, VertexId};

/// Read access to an edge-labeled directed graph.
///
/// Every method mirrors the corresponding [`crate::LabeledGraph`]
/// accessor; neighbour slices must be sorted and duplicate-free so the
/// merge/galloping intersection primitives apply unchanged.
pub trait GraphView {
    /// Number of vertices in the domain (vertex ids are `0..num_vertices`).
    fn num_vertices(&self) -> usize;

    /// Number of distinct edge labels (= relations).
    fn num_labels(&self) -> usize;

    /// Cardinality `|R_l|` of one relation.
    fn label_count(&self, l: LabelId) -> usize;

    /// Out-neighbours of `v` through label `l`, sorted.
    fn out_neighbors(&self, v: VertexId, l: LabelId) -> &[VertexId];

    /// In-neighbours of `v` through label `l`, sorted.
    fn in_neighbors(&self, v: VertexId, l: LabelId) -> &[VertexId];

    /// True if edge `src -l-> dst` exists.
    fn has_edge(&self, src: VertexId, dst: VertexId, l: LabelId) -> bool {
        self.out_neighbors(src, l).binary_search(&dst).is_ok()
    }

    /// Upper bound on the out-degree over all vertices. Exact for CSR
    /// graphs; an overlay may report a bound (deletions can strand a
    /// stale maximum) — callers use this for buffer sizing only.
    fn max_out_degree(&self, l: LabelId) -> usize;

    /// Upper bound on the in-degree over all vertices (see
    /// [`GraphView::max_out_degree`]).
    fn max_in_degree(&self, l: LabelId) -> usize;

    /// `|π_src R_l|` — number of distinct sources of label `l`.
    fn distinct_sources(&self, l: LabelId) -> usize;

    /// `|π_dst R_l|` — number of distinct destinations of label `l`.
    fn distinct_targets(&self, l: LabelId) -> usize;

    /// Append the distinct sources of label `l` to `out`, sorted.
    fn sources_into(&self, l: LabelId, out: &mut Vec<VertexId>);

    /// Append the distinct destinations of label `l` to `out`, sorted.
    fn targets_into(&self, l: LabelId, out: &mut Vec<VertexId>);
}

impl GraphView for crate::LabeledGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        crate::LabeledGraph::num_vertices(self)
    }

    #[inline]
    fn num_labels(&self) -> usize {
        crate::LabeledGraph::num_labels(self)
    }

    #[inline]
    fn label_count(&self, l: LabelId) -> usize {
        crate::LabeledGraph::label_count(self, l)
    }

    #[inline]
    fn out_neighbors(&self, v: VertexId, l: LabelId) -> &[VertexId] {
        crate::LabeledGraph::out_neighbors(self, v, l)
    }

    #[inline]
    fn in_neighbors(&self, v: VertexId, l: LabelId) -> &[VertexId] {
        crate::LabeledGraph::in_neighbors(self, v, l)
    }

    #[inline]
    fn has_edge(&self, src: VertexId, dst: VertexId, l: LabelId) -> bool {
        crate::LabeledGraph::has_edge(self, src, dst, l)
    }

    #[inline]
    fn max_out_degree(&self, l: LabelId) -> usize {
        crate::LabeledGraph::max_out_degree(self, l)
    }

    #[inline]
    fn max_in_degree(&self, l: LabelId) -> usize {
        crate::LabeledGraph::max_in_degree(self, l)
    }

    #[inline]
    fn distinct_sources(&self, l: LabelId) -> usize {
        crate::LabeledGraph::distinct_sources(self, l)
    }

    #[inline]
    fn distinct_targets(&self, l: LabelId) -> usize {
        crate::LabeledGraph::distinct_targets(self, l)
    }

    fn sources_into(&self, l: LabelId, out: &mut Vec<VertexId>) {
        out.extend(self.sources(l));
    }

    fn targets_into(&self, l: LabelId, out: &mut Vec<VertexId>) {
        out.extend(self.targets(l));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn view_roundtrip<G: GraphView>(g: &G) {
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.out_neighbors(0, 0), &[1, 2]);
        assert!(g.has_edge(0, 1, 0));
        assert!(!g.has_edge(1, 0, 0));
        let mut src = Vec::new();
        g.sources_into(0, &mut src);
        assert_eq!(src, vec![0]);
    }

    #[test]
    fn labeled_graph_is_a_view() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 2, 0);
        let g = b.build();
        view_roundtrip(&g);
        assert_eq!(g.distinct_targets(0), 2);
        let mut tg = Vec::new();
        g.targets_into(0, &mut tg);
        assert_eq!(tg, vec![1, 2]);
    }
}
