//! The storage seam: every durable byte the workspace writes — snapshot
//! files and the commit write-ahead log — goes through [`Storage`], a
//! small virtual-filesystem trait, instead of calling `std::fs`
//! directly.
//!
//! Two implementations exist:
//!
//! * [`OsStorage`] — the real filesystem. `sync` maps to `fdatasync`
//!   (file contents reach the device; the WAL does not need a metadata
//!   flush per commit) and `sync_dir` to an `fsync` of the directory
//!   (a renamed file's directory entry reaches the device).
//! * [`FaultStorage`] — an in-memory filesystem for crash and fault
//!   testing. It counts every operation and can be armed to fail one
//!   operation with a typed [`io::ErrorKind`], persist only half of one
//!   write (a short/torn write), or **crash**: from operation `N` on,
//!   every call fails, and a later [`FaultStorage::reboot`] discards
//!   bytes that were never synced — exactly what a power loss does to a
//!   page cache.
//!
//! The durability model [`FaultStorage`] implements is deliberately the
//! *weakest* one our recovery code must survive: data reaches "disk"
//! only at `sync`; a crash keeps synced bytes, keeps an arbitrary
//! prefix of unsynced bytes (the reboot caller chooses how many, so a
//! test can sweep every torn-tail shape), and namespace operations
//! (create/rename/remove/truncate) are applied atomically. That last
//! simplification is safe because the real code always pairs a rename
//! with [`Storage::sync_dir`] — the atomic-rename guarantee is the one
//! the code actually relies on, and modelling a *lost* rename would
//! only re-test `atomic_write`'s dir-fsync line, not the recovery
//! logic.
//!
//! `ceg-core` re-exports this module as `ceg_core::vfs` (the dependency
//! arrow points graph ← core, and the snapshot/WAL codecs that consume
//! the seam live here in `ceg-graph`).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::sync::{LockRank, OrderedMutex};

/// An open, writable file handle dispensed by a [`Storage`].
pub trait StorageFile: Send {
    /// Append the whole buffer (the handle is append-only: snapshot
    /// temp files and the WAL are both written strictly forward).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Flush written bytes to durable storage (`fdatasync` semantics:
    /// after `sync` returns, the data survives a crash).
    fn sync(&mut self) -> io::Result<()>;
}

/// The virtual filesystem the snapshot and WAL paths are written
/// against: open/read/write/fsync/rename plus the few namespace
/// operations recovery needs (truncate, remove, list).
pub trait Storage: Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Create (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Open a file for appending, creating it empty if missing.
    fn append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Atomically rename `from` to `to` (replacing `to`).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove a file.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Truncate a file to `len` bytes (recovery chops torn WAL tails).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Current length of a file in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;

    /// True if the path names an existing file.
    fn exists(&self, path: &Path) -> bool;

    /// File paths directly inside `dir` (no recursion, no directories).
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Fsync the directory itself so renames/creates inside it are
    /// durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------
// OsStorage
// ---------------------------------------------------------------------

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsStorage;

struct OsFile(std::fs::File);

impl StorageFile for OsFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        use io::Write;
        self.0.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl Storage for OsStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(OsFile(std::fs::File::create(path)?)))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(OsFile(f)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            std::fs::File::open(dir)?.sync_all()?;
        }
        #[cfg(not(unix))]
        let _ = dir;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// FaultStorage
// ---------------------------------------------------------------------

/// What [`FaultStorage`] is armed to do, set via
/// [`FaultStorage::set_plan`]. Operation indices are 0-based and count
/// every `Storage`/`StorageFile` call on that storage, in order.
#[derive(Debug, Default, Clone, Copy)]
pub struct FaultPlan {
    /// Fail operation `N` once with this [`io::ErrorKind`]; later
    /// operations proceed normally (a transient typed failure — e.g. a
    /// single `ENOSPC` or `EINTR`).
    pub fail_at: Option<(u64, io::ErrorKind)>,
    /// On a write at operation `N`, persist only the first half of the
    /// buffer and fail (a short write torn mid-buffer). One-shot.
    pub short_write_at: Option<u64>,
    /// From operation `N` on, every call fails — the process "crashed"
    /// mid-operation. If operation `N` itself is a write, half of its
    /// buffer lands (unsynced) first, so the crash can tear a record in
    /// two. Clear with [`FaultStorage::reboot`].
    pub crash_after: Option<u64>,
}

impl FaultPlan {
    /// Arm [`FaultPlan::fail_at`]. Pair with
    /// [`FaultStorage::op_count`] to target "the next operation".
    pub fn fail_at(mut self, op: u64, kind: io::ErrorKind) -> Self {
        self.fail_at = Some((op, kind));
        self
    }

    /// Arm [`FaultPlan::short_write_at`].
    pub fn short_write_at(mut self, op: u64) -> Self {
        self.short_write_at = Some(op);
        self
    }

    /// Arm [`FaultPlan::crash_after`].
    pub fn crash_after(mut self, op: u64) -> Self {
        self.crash_after = Some(op);
        self
    }
}

#[derive(Default, Clone)]
struct FaultFile {
    bytes: Vec<u8>,
    /// Prefix guaranteed to survive a crash (advanced by `sync`).
    synced: usize,
}

#[derive(Default)]
struct FaultInner {
    files: BTreeMap<PathBuf, FaultFile>,
    plan: FaultPlan,
    ops: u64,
    crashed: bool,
}

impl FaultInner {
    /// Account one operation and apply the armed plan. `writing` carries
    /// the buffer of a write op so crash/short-write can tear it.
    fn step(&mut self, writing: Option<(&PathBuf, &[u8])>) -> io::Result<()> {
        if self.crashed {
            return Err(io::Error::other("fault storage: crashed"));
        }
        let op = self.ops;
        self.ops += 1;
        if let Some(n) = self.plan.crash_after {
            if op >= n {
                self.crashed = true;
                if let Some((path, buf)) = writing {
                    let torn = &buf[..buf.len() / 2];
                    self.files
                        .entry(path.clone())
                        .or_default()
                        .bytes
                        .extend(torn);
                }
                return Err(io::Error::other("fault storage: crashed"));
            }
        }
        if let Some((n, kind)) = self.plan.fail_at {
            if op == n {
                return Err(io::Error::new(kind, "fault storage: injected failure"));
            }
        }
        if let Some(n) = self.plan.short_write_at {
            if op == n {
                if let Some((path, buf)) = writing {
                    let torn = &buf[..buf.len() / 2];
                    self.files
                        .entry(path.clone())
                        .or_default()
                        .bytes
                        .extend(torn);
                }
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "fault storage: short write",
                ));
            }
        }
        Ok(())
    }
}

/// In-memory fault-injecting [`Storage`]. Cheap to clone (shared
/// state): tests keep one handle to arm faults and inspect files while
/// the code under test holds another.
#[derive(Clone)]
pub struct FaultStorage {
    inner: Arc<OrderedMutex<FaultInner>>,
}

impl Default for FaultStorage {
    fn default() -> Self {
        // Rank `Wal`: the simulated device is the innermost lock — its
        // operations run under the durability/state locks of a commit.
        FaultStorage {
            inner: Arc::new(OrderedMutex::new(LockRank::Wal, FaultInner::default())),
        }
    }
}

impl FaultStorage {
    /// An empty, fault-free in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or clear, with `FaultPlan::default()`) the fault plan.
    pub fn set_plan(&self, plan: FaultPlan) {
        self.inner.lock().plan = plan;
    }

    /// Operations performed so far — a crash-point sweep runs the
    /// workload once fault-free to learn the op count, then replays it
    /// with `crash_after` at every index below it.
    pub fn op_count(&self) -> u64 {
        self.inner.lock().ops
    }

    /// True once a `crash_after` point has tripped.
    pub fn crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Simulate the machine coming back up: for every file, bytes past
    /// the synced prefix survive only up to `keep_unsynced` of them
    /// (sweep `0`, `1`, and `usize::MAX` to model "page cache lost",
    /// "one stray sector", "everything happened to land"). Clears the
    /// crashed flag, the fault plan and the op counter.
    pub fn reboot(&self, keep_unsynced: usize) {
        let mut inner = self.inner.lock();
        for f in inner.files.values_mut() {
            let keep = f.synced + keep_unsynced.min(f.bytes.len() - f.synced);
            f.bytes.truncate(keep);
            f.synced = f.bytes.len();
        }
        inner.plan = FaultPlan::default();
        inner.ops = 0;
        inner.crashed = false;
    }

    /// Current contents of a file (tests inspect what "disk" holds).
    pub fn dump(&self, path: &Path) -> Option<Vec<u8>> {
        self.inner.lock().files.get(path).map(|f| f.bytes.clone())
    }

    /// Flip one bit of a stored file in place (bit-rot injection).
    /// Panics if the path or offset does not exist — a test bug.
    pub fn flip_bit(&self, path: &Path, byte: usize, bit: u8) {
        let mut inner = self.inner.lock();
        let f = inner.files.get_mut(path).expect("flip_bit: no such file");
        f.bytes[byte] ^= 1 << (bit & 7);
    }

    /// Replace a file's contents wholesale, marked fully synced (tests
    /// seed corrupt inputs directly).
    pub fn install(&self, path: &Path, bytes: Vec<u8>) {
        let mut inner = self.inner.lock();
        let synced = bytes.len();
        inner
            .files
            .insert(path.to_path_buf(), FaultFile { bytes, synced });
    }
}

struct FaultHandle {
    inner: Arc<OrderedMutex<FaultInner>>,
    path: PathBuf,
}

impl StorageFile for FaultHandle {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.step(Some((&self.path, buf)))?;
        match inner.files.get_mut(&self.path) {
            Some(f) => {
                f.bytes.extend_from_slice(buf);
                Ok(())
            }
            // The file was removed/renamed out from under the handle;
            // the real filesystem would keep writing to the inode, but
            // no code path does this — flag it loudly.
            None => Err(io::Error::other("fault storage: write to removed file")),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.step(None)?;
        if let Some(f) = inner.files.get_mut(&self.path) {
            f.synced = f.bytes.len();
        }
        Ok(())
    }
}

impl Storage for FaultStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut inner = self.inner.lock();
        inner.step(None)?;
        inner
            .files
            .get(path)
            .map(|f| f.bytes.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fault storage: not found"))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let mut inner = self.inner.lock();
        inner.step(None)?;
        inner.files.insert(path.to_path_buf(), FaultFile::default());
        Ok(Box::new(FaultHandle {
            inner: self.inner.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let mut inner = self.inner.lock();
        inner.step(None)?;
        inner.files.entry(path.to_path_buf()).or_default();
        Ok(Box::new(FaultHandle {
            inner: self.inner.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.step(None)?;
        match inner.files.remove(from) {
            Some(f) => {
                inner.files.insert(to.to_path_buf(), f);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "fault storage: not found",
            )),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.step(None)?;
        inner
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fault storage: not found"))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.step(None)?;
        match inner.files.get_mut(path) {
            Some(f) => {
                f.bytes.truncate(len as usize);
                f.synced = f.synced.min(f.bytes.len());
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "fault storage: not found",
            )),
        }
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        let mut inner = self.inner.lock();
        inner.step(None)?;
        inner
            .files
            .get(path)
            .map(|f| f.bytes.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fault storage: not found"))
    }

    fn exists(&self, path: &Path) -> bool {
        // Existence probes are not faultable ops: recovery uses them to
        // decide *which* path to take, and a probe that lies would test
        // a filesystem no OS exhibits.
        self.inner.lock().files.contains_key(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut inner = self.inner.lock();
        inner.step(None)?;
        Ok(inner
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        self.inner.lock().step(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn fault_storage_roundtrips_files() {
        let fs = FaultStorage::new();
        let mut f = fs.create(&p("/d/a")).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(fs.read(&p("/d/a")).unwrap(), b"hello");
        assert_eq!(fs.len(&p("/d/a")).unwrap(), 5);
        let mut f = fs.append(&p("/d/a")).unwrap();
        f.write_all(b" world").unwrap();
        drop(f);
        assert_eq!(fs.read(&p("/d/a")).unwrap(), b"hello world");
        fs.rename(&p("/d/a"), &p("/d/b")).unwrap();
        assert!(!fs.exists(&p("/d/a")));
        assert_eq!(fs.read(&p("/d/b")).unwrap(), b"hello world");
        fs.truncate(&p("/d/b"), 5).unwrap();
        assert_eq!(fs.read(&p("/d/b")).unwrap(), b"hello");
        assert_eq!(fs.list(&p("/d")).unwrap(), vec![p("/d/b")]);
        fs.remove(&p("/d/b")).unwrap();
        assert_eq!(
            fs.read(&p("/d/b")).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn reboot_discards_unsynced_bytes() {
        let fs = FaultStorage::new();
        let mut f = fs.create(&p("/w")).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync().unwrap();
        f.write_all(b" lost").unwrap(); // never synced
        drop(f);
        let fs2 = fs.clone();
        fs2.reboot(0);
        assert_eq!(fs.read(&p("/w")).unwrap(), b"durable");
    }

    #[test]
    fn reboot_can_keep_a_torn_unsynced_prefix() {
        let fs = FaultStorage::new();
        let mut f = fs.create(&p("/w")).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync().unwrap();
        f.write_all(b"defgh").unwrap();
        drop(f);
        fs.reboot(2);
        assert_eq!(fs.read(&p("/w")).unwrap(), b"abcde");
    }

    #[test]
    fn fail_at_injects_one_typed_error_then_recovers() {
        let fs = FaultStorage::new();
        fs.set_plan(FaultPlan {
            fail_at: Some((1, io::ErrorKind::StorageFull)),
            ..Default::default()
        });
        let mut f = fs.create(&p("/w")).unwrap(); // op 0
        let err = f.write_all(b"x").unwrap_err(); // op 1: injected
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        f.write_all(b"y").unwrap(); // op 2: fine again
        assert_eq!(fs.dump(&p("/w")).unwrap(), b"y");
    }

    #[test]
    fn short_write_persists_half_the_buffer() {
        let fs = FaultStorage::new();
        fs.set_plan(FaultPlan {
            short_write_at: Some(1),
            ..Default::default()
        });
        let mut f = fs.create(&p("/w")).unwrap(); // op 0
        let err = f.write_all(b"abcdef").unwrap_err(); // op 1: torn
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(fs.dump(&p("/w")).unwrap(), b"abc");
    }

    #[test]
    fn crash_tears_the_tripping_write_and_kills_the_storage() {
        let fs = FaultStorage::new();
        fs.set_plan(FaultPlan {
            crash_after: Some(2),
            ..Default::default()
        });
        let mut f = fs.create(&p("/w")).unwrap(); // op 0
        f.write_all(b"keep").unwrap(); // op 1
        f.sync().unwrap_err(); // op 2: crash trips (sync fails, nothing synced)
        assert!(fs.crashed());
        assert!(fs.read(&p("/w")).is_err(), "storage is dead after crash");
        // Reboot with no unsynced survivors: the file exists (creation
        // was a namespace op) but the never-synced bytes are gone.
        fs.reboot(0);
        assert_eq!(fs.read(&p("/w")).unwrap(), b"");
    }

    #[test]
    fn crash_on_a_write_lands_half_of_it_unsynced() {
        let fs = FaultStorage::new();
        let mut f = fs.create(&p("/w")).unwrap();
        f.write_all(b"old!").unwrap();
        f.sync().unwrap();
        fs.set_plan(FaultPlan {
            crash_after: Some(3),
            ..Default::default()
        });
        f.write_all(b"abcdef").unwrap_err(); // op 3: crash mid-write
        fs.reboot(usize::MAX); // everything that landed survives
        assert_eq!(fs.read(&p("/w")).unwrap(), b"old!abc");
        fs.reboot(0);
        assert_eq!(
            fs.read(&p("/w")).unwrap(),
            b"old!abc",
            "already synced by first reboot"
        );
    }

    #[test]
    fn flip_bit_corrupts_in_place() {
        let fs = FaultStorage::new();
        fs.install(&p("/w"), b"\x00".to_vec());
        fs.flip_bit(&p("/w"), 0, 3);
        assert_eq!(fs.read(&p("/w")).unwrap(), b"\x08");
    }

    #[test]
    fn os_storage_roundtrips_and_lists() {
        let dir = std::env::temp_dir().join(format!("ceg-vfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = OsStorage;
        let path = dir.join("a.bin");
        let mut f = fs.create(&path).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync().unwrap();
        drop(f);
        let mut f = fs.append(&path).unwrap();
        f.write_all(b"def").unwrap();
        drop(f);
        assert_eq!(fs.read(&path).unwrap(), b"abcdef");
        fs.truncate(&path, 4).unwrap();
        assert_eq!(fs.len(&path).unwrap(), 4);
        let renamed = dir.join("b.bin");
        fs.rename(&path, &renamed).unwrap();
        fs.sync_dir(&dir).unwrap();
        assert!(fs.exists(&renamed) && !fs.exists(&path));
        assert_eq!(fs.list(&dir).unwrap(), vec![renamed.clone()]);
        fs.remove(&renamed).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }
}
