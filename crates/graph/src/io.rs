//! Plain-text edge-list persistence.
//!
//! Format: one edge per line, `src dst label`, whitespace separated; `#`
//! starts a comment. This mirrors the format used by the paper's public
//! artifact repositories for their datasets.

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use crate::{GraphBuilder, LabeledGraph};

/// Parse a graph from a reader in `src dst label` format.
pub fn read_edge_list<R: BufRead>(reader: R) -> io::Result<LabeledGraph> {
    let mut b = GraphBuilder::new(0);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> io::Result<u64> {
            tok.ok_or_else(|| bad_line(lineno, what, "missing"))?
                .parse::<u64>()
                .map_err(|_| bad_line(lineno, what, "not an integer"))
        };
        let src = parse(it.next(), "src")? as u32;
        let dst = parse(it.next(), "dst")? as u32;
        let label = parse(it.next(), "label")? as u16;
        b.add_edge(src, dst, label);
    }
    Ok(b.build())
}

fn bad_line(lineno: usize, field: &str, why: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("line {}: field `{field}` {why}", lineno + 1),
    )
}

/// Load a graph from a file path.
pub fn load_graph(path: impl AsRef<Path>) -> io::Result<LabeledGraph> {
    let f = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(f))
}

/// Write a graph as an edge list.
pub fn write_edge_list<W: Write>(graph: &LabeledGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for e in graph.all_edges() {
        writeln!(w, "{} {} {}", e.src, e.dst, e.label)?;
    }
    w.flush()
}

/// Save a graph to a file path.
pub fn save_graph(graph: &LabeledGraph, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_edge_list(graph, f)
}

/// Write a graph-only `.cegsnap` binary snapshot: the raw CSR relations
/// plus an epoch, in the checksummed section container of
/// [`crate::snapshot`]. Restoring skips text parsing and CSR
/// construction entirely. The full service snapshot (graph + Markov
/// catalog + epoch) is written by `ceg-catalog::io::write_snapshot` in
/// the same container.
pub fn write_snapshot(path: impl AsRef<Path>, graph: &LabeledGraph, epoch: u64) -> io::Result<()> {
    use crate::snapshot::{
        atomic_write, encode_epoch, encode_graph, SnapshotWriter, TAG_EPOCH, TAG_GRAPH,
    };
    atomic_write(path.as_ref(), |f| {
        let mut w = SnapshotWriter::new(f)?;
        w.write_section(TAG_EPOCH, &encode_epoch(epoch))?;
        w.write_section(TAG_GRAPH, &encode_graph(graph))?;
        w.finish()?;
        Ok(())
    })
}

/// Read the graph and epoch out of any `.cegsnap` snapshot, skipping
/// sections this crate does not know (a full service snapshot restores
/// fine; its catalog section is ignored here). Corrupt or truncated
/// files are rejected with `InvalidData` errors, never panics.
pub fn read_snapshot(path: impl AsRef<Path>) -> io::Result<(LabeledGraph, u64)> {
    use crate::snapshot::{decode_epoch, decode_graph, SnapshotReader, TAG_EPOCH, TAG_GRAPH};
    let f = std::fs::File::open(path)?;
    let mut r = SnapshotReader::new(io::BufReader::new(f))?;
    let mut graph = None;
    let mut epoch = None;
    while let Some((tag, payload)) = r.next_section()? {
        match tag {
            TAG_GRAPH => graph = Some(decode_graph(&payload)?),
            TAG_EPOCH => epoch = Some(decode_epoch(&payload)?),
            _ => {} // unknown section: skip (forward compatibility)
        }
    }
    let graph = graph.ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "snapshot has no graph section")
    })?;
    let epoch = epoch.ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "snapshot has no epoch section")
    })?;
    Ok((graph, epoch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_text() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(3, 0, 0);
        let g = b.build();

        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(g2.num_edges(), 3);
        assert!(g2.has_edge(0, 1, 0));
        assert!(g2.has_edge(1, 2, 1));
        assert!(g2.has_edge(3, 0, 0));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\n0 1 0 # trailing comment\n1 2 0\n";
        let g = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_is_an_error() {
        let text = "0 1\n";
        let err = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("label"));
    }

    #[test]
    fn non_integer_is_an_error() {
        let text = "0 x 1\n";
        let err = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("dst"));
    }

    #[test]
    fn binary_snapshot_roundtrips_through_a_file() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(3, 0, 0);
        let g = b.build();
        let path = std::env::temp_dir().join(format!("ceg-io-snap-{}.cegsnap", std::process::id()));
        write_snapshot(&path, &g, 9).unwrap();
        let (g2, epoch) = read_snapshot(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(epoch, 9);
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for e in g.all_edges() {
            assert!(g2.has_edge(e.src, e.dst, e.label), "{e:?}");
        }
    }

    #[test]
    fn snapshot_of_garbage_file_is_an_error() {
        let path = std::env::temp_dir().join(format!("ceg-io-junk-{}.cegsnap", std::process::id()));
        std::fs::write(&path, b"this is not a snapshot").unwrap();
        let err = read_snapshot(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
