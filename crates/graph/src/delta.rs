//! Edge-level graph deltas: the mutable layer over immutable CSR graphs.
//!
//! A [`GraphDelta`] records a batch of edge insertions and deletions as a
//! sorted last-writer-wins map over [`Edge`]s. Deltas are *positional*
//! overlays: they describe the desired presence of each touched edge
//! relative to some base graph, so re-adding an edge the base already has
//! (or deleting one it lacks) is a recorded no-op that normalization
//! ([`GraphDelta::effective`]) strips at apply time. Two layering
//! operations consume a delta:
//!
//! * [`crate::LabeledGraph::rebase`] folds it into a fresh CSR graph,
//!   rebuilding only the touched relations and sharing the rest,
//! * [`crate::OverlayGraph`] lays it over the base without rebuilding,
//!   patching only the touched neighbour lists.

use std::collections::BTreeMap;

use crate::graph::Edge;
use crate::{LabelId, LabeledGraph, VertexId};

/// A batch of edge insertions/deletions over some base graph.
///
/// Internally a sorted map `Edge -> present?`; the last `add_edge` /
/// `del_edge` call for a given `(src, dst, label)` wins, which makes
/// merging deltas ([`GraphDelta::merge`]) a plain map union.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// `true` = the edge should exist after applying, `false` = it should
    /// not. Sorted by [`Edge`]'s derived order: `(src, dst, label)`.
    ops: BTreeMap<Edge, bool>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Record that `src -label-> dst` should exist.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, label: LabelId) {
        self.ops.insert(Edge { src, dst, label }, true);
    }

    /// Record that `src -label-> dst` should not exist.
    pub fn del_edge(&mut self, src: VertexId, dst: VertexId, label: LabelId) {
        self.ops.insert(Edge { src, dst, label }, false);
    }

    /// Number of recorded edge operations (insertions + deletions).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operation is recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drop every recorded operation.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Iterate the recorded insertions, in `(src, dst, label)` order.
    pub fn adds(&self) -> impl Iterator<Item = Edge> + '_ {
        self.ops.iter().filter(|&(_, &add)| add).map(|(&e, _)| e)
    }

    /// Iterate the recorded deletions, in `(src, dst, label)` order.
    pub fn dels(&self) -> impl Iterator<Item = Edge> + '_ {
        self.ops.iter().filter(|&(_, &add)| !add).map(|(&e, _)| e)
    }

    /// The recorded presence override for one edge, if any: `Some(true)`
    /// means inserted, `Some(false)` deleted, `None` untouched.
    pub fn edge_override(&self, src: VertexId, dst: VertexId, label: LabelId) -> Option<bool> {
        self.ops.get(&Edge { src, dst, label }).copied()
    }

    /// The labels with at least one recorded operation, sorted and
    /// duplicate-free — the relations incremental catalog maintenance
    /// must recount.
    pub fn touched_labels(&self) -> Vec<LabelId> {
        let mut labels: Vec<LabelId> = self.ops.keys().map(|e| e.label).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Largest vertex id mentioned by any operation.
    pub fn max_vertex(&self) -> Option<VertexId> {
        self.ops.keys().map(|e| e.src.max(e.dst)).max()
    }

    /// Largest label mentioned by any operation.
    pub fn max_label(&self) -> Option<LabelId> {
        self.ops.keys().map(|e| e.label).max()
    }

    /// Layer `newer` on top of `self` (later operations win). Folding a
    /// sequence of committed deltas into one overlay is exactly repeated
    /// `merge`.
    pub fn merge(&mut self, newer: &GraphDelta) {
        for (&e, &add) in &newer.ops {
            self.ops.insert(e, add);
        }
    }

    /// Normalize against `base`: the insertions the base actually lacks
    /// and the deletions it actually has, each sorted. These two sets are
    /// disjoint and are what [`LabeledGraph::rebase`] /
    /// [`crate::OverlayGraph`] physically apply; everything else in the
    /// delta is a no-op relative to `base`.
    pub fn effective(&self, base: &LabeledGraph) -> (Vec<Edge>, Vec<Edge>) {
        let mut adds = Vec::new();
        let mut dels = Vec::new();
        for (&e, &add) in &self.ops {
            let present = base.has_edge(e.src, e.dst, e.label);
            match (add, present) {
                (true, false) => adds.push(e),
                (false, true) => dels.push(e),
                _ => {}
            }
        }
        (adds, dels)
    }

    /// [`GraphDelta::effective`] grouped per label in one pass: for each
    /// touched label (ascending), its effective insertions and deletions
    /// as `(src, dst)` pairs, each list sorted (the per-label
    /// subsequences of the `(src, dst, label)`-ordered op map). Labels
    /// whose operations are all no-ops relative to `base` produce no
    /// entry. This is what [`LabeledGraph::rebase`] and
    /// [`crate::OverlayGraph`] consume — one scan of the delta instead of
    /// one per touched label.
    #[allow(clippy::type_complexity)]
    pub fn effective_by_label(
        &self,
        base: &LabeledGraph,
    ) -> std::collections::BTreeMap<LabelId, (Vec<(VertexId, VertexId)>, Vec<(VertexId, VertexId)>)>
    {
        let mut by_label: std::collections::BTreeMap<
            LabelId,
            (Vec<(VertexId, VertexId)>, Vec<(VertexId, VertexId)>),
        > = std::collections::BTreeMap::new();
        for (&e, &add) in &self.ops {
            let present = base.has_edge(e.src, e.dst, e.label);
            if add == present {
                continue; // no-op relative to the base
            }
            let entry = by_label.entry(e.label).or_default();
            if add {
                entry.0.push((e.src, e.dst));
            } else {
                entry.1.push((e.src, e.dst));
            }
        }
        by_label
    }

    /// The delta with every vertex id passed through `f` (labels and
    /// add/delete polarity unchanged). Used by the service to translate a
    /// delta between wire-visible (external) ids and the renumbered
    /// (internal) ids of [`crate::VertexRemap`]; under a bijection the
    /// op count is preserved.
    pub fn map_vertices(&self, f: impl Fn(VertexId) -> VertexId) -> GraphDelta {
        let mut out = GraphDelta::new();
        for (&e, &add) in &self.ops {
            out.ops.insert(
                Edge {
                    src: f(e.src),
                    dst: f(e.dst),
                    label: e.label,
                },
                add,
            );
        }
        out
    }

    /// Drop operations that are no-ops relative to `base`, returning how
    /// many insertions and deletions remain.
    pub fn normalize(&mut self, base: &LabeledGraph) -> (usize, usize) {
        self.ops
            .retain(|e, &mut add| add != base.has_edge(e.src, e.dst, e.label));
        let adds = self.ops.values().filter(|&&a| a).count();
        (adds, self.ops.len() - adds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn base() -> LabeledGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn last_writer_wins() {
        let mut d = GraphDelta::new();
        d.add_edge(0, 1, 0);
        d.del_edge(0, 1, 0);
        assert_eq!(d.len(), 1);
        assert_eq!(d.edge_override(0, 1, 0), Some(false));
        d.add_edge(0, 1, 0);
        assert_eq!(d.edge_override(0, 1, 0), Some(true));
        assert_eq!(d.adds().count(), 1);
        assert_eq!(d.dels().count(), 0);
    }

    #[test]
    fn touched_labels_sorted_dedup() {
        let mut d = GraphDelta::new();
        d.add_edge(0, 1, 2);
        d.del_edge(1, 2, 0);
        d.add_edge(2, 3, 2);
        assert_eq!(d.touched_labels(), vec![0, 2]);
        assert_eq!(d.max_vertex(), Some(3));
        assert_eq!(d.max_label(), Some(2));
    }

    #[test]
    fn effective_strips_noops() {
        let g = base();
        let mut d = GraphDelta::new();
        d.add_edge(0, 1, 0); // already present: no-op
        d.add_edge(3, 0, 0); // genuinely new
        d.del_edge(1, 2, 0); // genuinely deleted
        d.del_edge(0, 3, 1); // absent: no-op
        let (adds, dels) = d.effective(&g);
        assert_eq!(adds.len(), 1);
        assert_eq!(
            adds[0],
            Edge {
                src: 3,
                dst: 0,
                label: 0
            }
        );
        assert_eq!(dels.len(), 1);
        assert_eq!(
            dels[0],
            Edge {
                src: 1,
                dst: 2,
                label: 0
            }
        );
        let mut d2 = d.clone();
        assert_eq!(d2.normalize(&g), (1, 1));
        assert_eq!(d2.len(), 2);
    }

    #[test]
    fn merge_is_last_writer_wins_across_deltas() {
        let mut older = GraphDelta::new();
        older.add_edge(0, 1, 0);
        older.del_edge(1, 2, 0);
        let mut newer = GraphDelta::new();
        newer.del_edge(0, 1, 0);
        newer.add_edge(2, 3, 1);
        older.merge(&newer);
        assert_eq!(older.edge_override(0, 1, 0), Some(false));
        assert_eq!(older.edge_override(1, 2, 0), Some(false));
        assert_eq!(older.edge_override(2, 3, 1), Some(true));
        assert_eq!(older.len(), 3);
    }

    #[test]
    fn map_vertices_translates_ids_and_keeps_polarity() {
        let mut d = GraphDelta::new();
        d.add_edge(0, 1, 0);
        d.del_edge(2, 3, 1);
        let swapped = d.map_vertices(|v| 3 - v);
        assert_eq!(swapped.len(), 2);
        assert_eq!(swapped.edge_override(3, 2, 0), Some(true));
        assert_eq!(swapped.edge_override(1, 0, 1), Some(false));
        // An involution round-trips.
        assert_eq!(swapped.map_vertices(|v| 3 - v), d);
    }

    #[test]
    fn empty_delta_is_effective_noop() {
        let g = base();
        let d = GraphDelta::new();
        assert!(d.is_empty());
        let (adds, dels) = d.effective(&g);
        assert!(adds.is_empty() && dels.is_empty());
        assert!(d.touched_labels().is_empty());
        assert_eq!(d.max_vertex(), None);
    }
}
