//! Per-label summary statistics.
//!
//! These are the base-relation statistics every estimator in the paper
//! consumes: cardinalities, projection sizes, average and maximum degrees.

use crate::{LabelId, LabeledGraph};

/// Summary statistics of one relation `R_l`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelStats {
    pub label: LabelId,
    /// `|R_l|`.
    pub cardinality: usize,
    /// `|π_src R_l|`.
    pub distinct_sources: usize,
    /// `|π_dst R_l|`.
    pub distinct_targets: usize,
    /// `deg(src, R_l)` — maximum out-degree.
    pub max_out_degree: usize,
    /// `deg(dst, R_l)` — maximum in-degree.
    pub max_in_degree: usize,
}

impl LabelStats {
    /// Compute statistics for one label of `graph`.
    pub fn compute(graph: &LabeledGraph, label: LabelId) -> Self {
        LabelStats {
            label,
            cardinality: graph.label_count(label),
            distinct_sources: graph.distinct_sources(label),
            distinct_targets: graph.distinct_targets(label),
            max_out_degree: graph.max_out_degree(label),
            max_in_degree: graph.max_in_degree(label),
        }
    }

    /// Average out-degree over active sources (0 if the relation is empty).
    pub fn avg_out_degree(&self) -> f64 {
        if self.distinct_sources == 0 {
            0.0
        } else {
            self.cardinality as f64 / self.distinct_sources as f64
        }
    }

    /// Average in-degree over active targets (0 if the relation is empty).
    pub fn avg_in_degree(&self) -> f64 {
        if self.distinct_targets == 0 {
            0.0
        } else {
            self.cardinality as f64 / self.distinct_targets as f64
        }
    }
}

/// Statistics for every label of `graph`.
pub fn all_label_stats(graph: &LabeledGraph) -> Vec<LabelStats> {
    (0..graph.num_labels() as LabelId)
        .map(|l| LabelStats::compute(graph, l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_of_star() {
        // vertex 0 has three out-edges with label 0
        let mut b = GraphBuilder::new(4);
        for d in 1..4 {
            b.add_edge(0, d, 0);
        }
        let g = b.build();
        let s = LabelStats::compute(&g, 0);
        assert_eq!(s.cardinality, 3);
        assert_eq!(s.distinct_sources, 1);
        assert_eq!(s.distinct_targets, 3);
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.avg_out_degree() - 3.0).abs() < 1e-12);
        assert!((s.avg_in_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_relation_has_zero_averages() {
        let g = GraphBuilder::with_labels(3, 2).build();
        let s = LabelStats::compute(&g, 1);
        assert_eq!(s.cardinality, 0);
        assert_eq!(s.avg_out_degree(), 0.0);
        assert_eq!(s.avg_in_degree(), 0.0);
    }

    #[test]
    fn all_labels_covered() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 0, 1);
        let g = b.build();
        let all = all_label_stats(&g);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].label, 0);
        assert_eq!(all[1].label, 1);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn parallel_labels_are_independent() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 1, 1); // same pair, different relation
        let g = b.build();
        assert_eq!(LabelStats::compute(&g, 0).cardinality, 1);
        assert_eq!(LabelStats::compute(&g, 1).cardinality, 1);
    }

    #[test]
    fn self_loop_counts_in_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 0);
        let g = b.build();
        let s = LabelStats::compute(&g, 0);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.distinct_sources, 1);
        assert_eq!(s.distinct_targets, 1);
    }
}
