//! Incremental graph construction.

use crate::csr::Csr;
use crate::graph::LabeledGraph;
use crate::{LabelId, VertexId};

/// Builder that collects labeled edges and produces a [`LabeledGraph`].
///
/// Duplicate `(src, dst, label)` triples are removed at build time — the
/// relations of Section 2 are sets, not bags.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    /// Per-label edge pairs, grown on demand.
    per_label: Vec<Vec<(VertexId, VertexId)>>,
}

impl GraphBuilder {
    /// Builder over the vertex domain `0..num_vertices`.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            per_label: Vec::new(),
        }
    }

    /// Builder with a pre-declared number of labels (avoids label-vector
    /// growth; useful when filtering an existing graph so empty relations
    /// keep their label ids).
    pub fn with_labels(num_vertices: usize, num_labels: usize) -> Self {
        GraphBuilder {
            num_vertices,
            per_label: vec![Vec::new(); num_labels],
        }
    }

    /// Add edge `src -label-> dst`, growing the vertex domain if needed.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, label: LabelId) {
        let needed = (src.max(dst) as usize) + 1;
        if needed > self.num_vertices {
            self.num_vertices = needed;
        }
        if label as usize >= self.per_label.len() {
            self.per_label.resize(label as usize + 1, Vec::new());
        }
        self.per_label[label as usize].push((src, dst));
    }

    /// Number of edges added so far (duplicates included).
    pub fn len(&self) -> usize {
        self.per_label.iter().map(Vec::len).sum()
    }

    /// True if no edge has been added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finalize into an immutable [`LabeledGraph`].
    pub fn build(mut self) -> LabeledGraph {
        let n = self.num_vertices;
        let mut fwd = Vec::with_capacity(self.per_label.len());
        let mut bwd = Vec::with_capacity(self.per_label.len());
        for pairs in &mut self.per_label {
            pairs.sort_unstable();
            pairs.dedup();
            fwd.push(Csr::from_pairs(n, pairs));
            let rev: Vec<(VertexId, VertexId)> = pairs.iter().map(|&(s, d)| (d, s)).collect();
            bwd.push(Csr::from_pairs(n, &rev));
        }
        LabeledGraph::new(n, fwd, bwd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_removed() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 1, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn domain_grows_on_demand() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(5, 9, 2);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_labels(), 3);
        assert!(g.has_edge(5, 9, 2));
    }

    #[test]
    fn with_labels_preserves_empty_relations() {
        let b = GraphBuilder::with_labels(4, 7);
        let g = b.build();
        assert_eq!(g.num_labels(), 7);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn len_counts_pending_edges() {
        let mut b = GraphBuilder::new(3);
        assert!(b.is_empty());
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        assert_eq!(b.len(), 2);
    }
}
