//! Base-plus-delta overlay: run the counting kernel on an updated graph
//! without rebuilding any CSR.
//!
//! An [`OverlayGraph`] lays a [`GraphDelta`] over an immutable
//! [`LabeledGraph`]. Construction merges, for each touched `(label,
//! vertex, direction)` triple only, the base neighbour slice with the
//! delta's insertions/deletions into a small patched list; every
//! untouched list is served straight from the base CSR. Because the
//! patched lists are sorted `&[VertexId]` slices like the base's, the
//! whole [`GraphView`] surface — including the merge/galloping
//! intersection the PR 3 kernel is built on — works unchanged.
//!
//! Cost model: building the overlay is O(Δ · d) where `d` is the degree
//! of the touched vertices — independent of graph size — so it is the
//! right representation for a small delta over a big graph. Once a delta
//! grows past a threshold, fold it with [`LabeledGraph::rebase`] and
//! start a fresh overlay (the service registry does exactly this).

use crate::delta::GraphDelta;
use crate::view::GraphView;
use crate::{FxHashMap, LabelId, LabeledGraph, VertexId};

/// Patched adjacency of one relation in one direction.
#[derive(Debug, Default)]
struct DirPatch {
    /// Fully merged, sorted neighbour lists for the touched vertices.
    lists: FxHashMap<VertexId, Vec<VertexId>>,
    /// Upper bound on the maximum degree (base bound ∨ patched lists).
    max_degree: usize,
    /// Exact number of vertices with non-zero degree.
    num_active: usize,
}

/// Patch state of one touched relation.
#[derive(Debug)]
struct LabelPatch {
    /// Exact `|R_l|` after applying the delta.
    label_count: usize,
    fwd: DirPatch,
    bwd: DirPatch,
}

/// A [`GraphView`] over `base` with `delta` applied, no CSR rebuilt.
#[derive(Debug)]
pub struct OverlayGraph<'a> {
    base: &'a LabeledGraph,
    num_vertices: usize,
    num_labels: usize,
    /// Indexed by label; `None` for relations the delta does not touch.
    patches: Vec<Option<LabelPatch>>,
}

impl<'a> OverlayGraph<'a> {
    /// Lay `delta` over `base`. The delta is normalized and grouped per
    /// label in one pass ([`GraphDelta::effective_by_label`]), so
    /// recorded no-ops cost nothing beyond that pass and a label's
    /// operations are never re-scanned for other labels.
    pub fn new(base: &'a LabeledGraph, delta: &GraphDelta) -> Self {
        let num_vertices = base
            .num_vertices()
            .max(delta.max_vertex().map_or(0, |v| v as usize + 1));
        let num_labels = base
            .num_labels()
            .max(delta.max_label().map_or(0, |l| l as usize + 1));
        let mut patches: Vec<Option<LabelPatch>> = Vec::new();
        patches.resize_with(num_labels, || None);
        for (l, (add_l, del_l)) in delta.effective_by_label(base) {
            let label_count = base.label_count(l) + add_l.len() - del_l.len();
            let fwd = Self::dir_patch(base, l, false, &add_l, &del_l);
            let bwd = Self::dir_patch(base, l, true, &add_l, &del_l);
            patches[l as usize] = Some(LabelPatch {
                label_count,
                fwd,
                bwd,
            });
        }
        OverlayGraph {
            base,
            num_vertices,
            num_labels,
            patches,
        }
    }

    /// Build the patched lists of one direction of one relation.
    fn dir_patch(
        base: &LabeledGraph,
        l: LabelId,
        backward: bool,
        adds: &[(VertexId, VertexId)],
        dels: &[(VertexId, VertexId)],
    ) -> DirPatch {
        let key = |&(s, d): &(VertexId, VertexId)| if backward { (d, s) } else { (s, d) };
        // Group per endpoint: sorted target lists per touched vertex.
        let mut add_by: FxHashMap<VertexId, Vec<VertexId>> = FxHashMap::default();
        let mut del_by: FxHashMap<VertexId, Vec<VertexId>> = FxHashMap::default();
        for p in adds {
            let (v, t) = key(p);
            add_by.entry(v).or_default().push(t);
        }
        for p in dels {
            let (v, t) = key(p);
            del_by.entry(v).or_default().push(t);
        }
        let base_row = |v: VertexId| {
            if backward {
                base.in_neighbors(v, l)
            } else {
                base.out_neighbors(v, l)
            }
        };
        let base_max = if backward {
            base.max_in_degree(l)
        } else {
            base.max_out_degree(l)
        };
        let base_active = if backward {
            base.distinct_targets(l)
        } else {
            base.distinct_sources(l)
        };
        let mut touched: Vec<VertexId> = add_by.keys().chain(del_by.keys()).copied().collect();
        touched.sort_unstable();
        touched.dedup();
        let mut patch = DirPatch {
            max_degree: base_max,
            num_active: base_active,
            ..Default::default()
        };
        for v in touched {
            let mut a = add_by.remove(&v).unwrap_or_default();
            let mut d = del_by.remove(&v).unwrap_or_default();
            a.sort_unstable();
            d.sort_unstable();
            let row = base_row(v);
            let mut merged = Vec::with_capacity((row.len() + a.len()).saturating_sub(d.len()));
            crate::csr::merge_row_into(row, &a, &d, &mut merged);
            patch.max_degree = patch.max_degree.max(merged.len());
            match (row.is_empty(), merged.is_empty()) {
                (true, false) => patch.num_active += 1,
                (false, true) => patch.num_active -= 1,
                _ => {}
            }
            patch.lists.insert(v, merged);
        }
        patch
    }

    fn patch(&self, l: LabelId) -> Option<&LabelPatch> {
        self.patches.get(l as usize).and_then(Option::as_ref)
    }

    /// The base graph this overlay reads through to.
    pub fn base(&self) -> &'a LabeledGraph {
        self.base
    }

    /// Total number of edges across all labels.
    pub fn num_edges(&self) -> usize {
        (0..self.num_labels as LabelId)
            .map(|l| GraphView::label_count(self, l))
            .sum()
    }

    fn dir_sources_into(&self, l: LabelId, backward: bool, out: &mut Vec<VertexId>) {
        let start = out.len();
        match self.patch(l) {
            None => {
                if backward {
                    out.extend(self.base.targets(l));
                } else {
                    out.extend(self.base.sources(l));
                }
            }
            Some(p) => {
                let dp = if backward { &p.bwd } else { &p.fwd };
                let base_iter: Box<dyn Iterator<Item = VertexId>> = if backward {
                    Box::new(self.base.targets(l))
                } else {
                    Box::new(self.base.sources(l))
                };
                out.extend(base_iter.filter(|v| !dp.lists.contains_key(v)));
                out.extend(
                    dp.lists
                        .iter()
                        .filter(|(_, list)| !list.is_empty())
                        .map(|(&v, _)| v),
                );
                out[start..].sort_unstable();
            }
        }
    }
}

impl GraphView for OverlayGraph<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    #[inline]
    fn num_labels(&self) -> usize {
        self.num_labels
    }

    fn label_count(&self, l: LabelId) -> usize {
        match self.patch(l) {
            Some(p) => p.label_count,
            None => self.base.label_count(l),
        }
    }

    fn out_neighbors(&self, v: VertexId, l: LabelId) -> &[VertexId] {
        match self.patch(l).and_then(|p| p.fwd.lists.get(&v)) {
            Some(list) => list,
            None => self.base.out_neighbors(v, l),
        }
    }

    fn in_neighbors(&self, v: VertexId, l: LabelId) -> &[VertexId] {
        match self.patch(l).and_then(|p| p.bwd.lists.get(&v)) {
            Some(list) => list,
            None => self.base.in_neighbors(v, l),
        }
    }

    fn max_out_degree(&self, l: LabelId) -> usize {
        match self.patch(l) {
            Some(p) => p.fwd.max_degree,
            None => self.base.max_out_degree(l),
        }
    }

    fn max_in_degree(&self, l: LabelId) -> usize {
        match self.patch(l) {
            Some(p) => p.bwd.max_degree,
            None => self.base.max_in_degree(l),
        }
    }

    fn distinct_sources(&self, l: LabelId) -> usize {
        match self.patch(l) {
            Some(p) => p.fwd.num_active,
            None => self.base.distinct_sources(l),
        }
    }

    fn distinct_targets(&self, l: LabelId) -> usize {
        match self.patch(l) {
            Some(p) => p.bwd.num_active,
            None => self.base.distinct_targets(l),
        }
    }

    fn sources_into(&self, l: LabelId, out: &mut Vec<VertexId>) {
        self.dir_sources_into(l, false, out);
    }

    fn targets_into(&self, l: LabelId, out: &mut Vec<VertexId>) {
        self.dir_sources_into(l, true, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// label 0 = {0->1, 0->2, 1->2}, label 1 = {2->0}.
    fn base() -> LabeledGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 2, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 0, 1);
        b.build()
    }

    fn delta() -> GraphDelta {
        let mut d = GraphDelta::new();
        d.add_edge(2, 1, 0);
        d.del_edge(0, 1, 0);
        d.add_edge(1, 0, 1);
        d
    }

    /// Every GraphView observable must agree between the overlay and the
    /// rebased (fully materialized) graph.
    fn assert_view_equivalence(ov: &OverlayGraph<'_>, want: &LabeledGraph) {
        assert_eq!(GraphView::num_vertices(ov), want.num_vertices());
        assert_eq!(GraphView::num_labels(ov), want.num_labels());
        for l in 0..want.num_labels() as LabelId {
            assert_eq!(
                GraphView::label_count(ov, l),
                want.label_count(l),
                "|R_{l}|"
            );
            assert_eq!(ov.distinct_sources(l), want.distinct_sources(l));
            assert_eq!(ov.distinct_targets(l), want.distinct_targets(l));
            assert!(ov.max_out_degree(l) >= want.max_out_degree(l));
            assert!(ov.max_in_degree(l) >= want.max_in_degree(l));
            let (mut s_ov, mut s_want) = (Vec::new(), Vec::new());
            ov.sources_into(l, &mut s_ov);
            want.sources_into(l, &mut s_want);
            assert_eq!(s_ov, s_want, "sources of {l}");
            let (mut t_ov, mut t_want) = (Vec::new(), Vec::new());
            ov.targets_into(l, &mut t_ov);
            want.targets_into(l, &mut t_want);
            assert_eq!(t_ov, t_want, "targets of {l}");
            for v in 0..want.num_vertices() as VertexId {
                assert_eq!(
                    GraphView::out_neighbors(ov, v, l),
                    want.out_neighbors(v, l),
                    "out({v}, {l})"
                );
                assert_eq!(
                    GraphView::in_neighbors(ov, v, l),
                    want.in_neighbors(v, l),
                    "in({v}, {l})"
                );
            }
        }
    }

    #[test]
    fn overlay_matches_rebased_graph() {
        let g = base();
        let d = delta();
        let ov = OverlayGraph::new(&g, &d);
        let want = g.rebase(&d);
        assert_view_equivalence(&ov, &want);
        assert_eq!(ov.num_edges(), want.num_edges());
    }

    #[test]
    fn overlay_with_domain_growth() {
        let g = base();
        let mut d = GraphDelta::new();
        d.add_edge(4, 5, 2); // new vertices and a new label
        d.add_edge(0, 4, 0);
        let ov = OverlayGraph::new(&g, &d);
        let want = g.rebase(&d);
        assert_view_equivalence(&ov, &want);
        assert!(ov.has_edge(4, 5, 2));
        assert_eq!(GraphView::out_neighbors(&ov, 0, 0), &[1, 2, 4]);
    }

    #[test]
    fn overlay_with_noop_delta_reads_through() {
        let g = base();
        let mut d = GraphDelta::new();
        d.add_edge(0, 1, 0); // already present
        d.del_edge(1, 0, 1); // already absent
        let ov = OverlayGraph::new(&g, &d);
        assert_view_equivalence(&ov, &g.rebase(&d));
        assert_eq!(ov.num_edges(), g.num_edges());
    }

    #[test]
    fn overlay_deleting_a_whole_relation() {
        let g = base();
        let mut d = GraphDelta::new();
        d.del_edge(2, 0, 1);
        let ov = OverlayGraph::new(&g, &d);
        let want = g.rebase(&d);
        assert_view_equivalence(&ov, &want);
        assert_eq!(GraphView::label_count(&ov, 1), 0);
        assert_eq!(ov.distinct_sources(1), 0);
    }
}
