//! Ranked lock wrappers: the mechanical form of the lock-order
//! discipline the service crates promise in prose.
//!
//! Every long-lived lock in the workspace is an [`OrderedMutex`] or
//! [`OrderedRwLock`] constructed with a declared [`LockRank`]. Debug
//! builds keep a thread-local stack of currently-held ranks and panic
//! the moment any thread acquires a lock whose rank is not **strictly
//! greater** than everything it already holds — naming both ranks and
//! both acquisition sites. That turns the whole test suite into a
//! continuously-running deadlock detector: an ordering bug panics the
//! first time the *acquisition pattern* occurs, not the first time two
//! threads actually race into the deadly embrace.
//!
//! Release builds compile the checker out entirely: the rank field is
//! `#[cfg(debug_assertions)]`-gated, so `OrderedMutex<T>` is exactly
//! `std::sync::Mutex<T>` plus nothing (see
//! `rank_checks_compile_out`), and `lock()`/`read()`/`write()` reduce
//! to the std call plus a poison check.
//!
//! Like [`crate::vfs`], this module physically lives in `ceg-graph` —
//! the root of the workspace dependency graph, so every crate can use
//! it — and is re-exported as `ceg_core::sync`, the framework-level
//! name the rest of the codebase imports.
//!
//! Poisoning: `lock()`/`read()`/`write()` panic on a poisoned lock
//! (matching the `.lock().unwrap()` idiom they replace), while the
//! `checked_*` variants surface [`LockPoisoned`] so request paths can
//! degrade one dataset instead of killing a worker shard.

// This module is the one place allowed to name the raw std primitives
// it wraps — mirrored by the `lock-discipline` entry for this file in
// ceg-lint.allow.
#![allow(clippy::disallowed_types)]

use std::fmt;
#[cfg(debug_assertions)]
use std::panic::Location;
use std::sync::{Condvar, WaitTimeoutResult};
use std::time::Duration;

/// True when the debug-build lock-order checker is active. Release
/// builds compile it out; the nightly CI soak re-enables it on the
/// release profile via `debug-assertions = true`.
pub const RANK_CHECKS_ENABLED: bool = cfg!(debug_assertions);

/// The workspace-wide total order on lock acquisition. A thread may
/// only acquire a lock whose rank is strictly greater than every rank
/// it already holds; equal ranks are also forbidden (two same-rank
/// locks taken together by two threads in opposite orders deadlock
/// just as surely).
///
/// See ARCHITECTURE.md ("Static analysis & lock discipline") for the
/// rationale behind each position; the load-bearing one is
/// `Durability < DatasetState`: a durable commit holds the durability
/// mutex across the WAL append while taking the state write lock, and
/// snapshot rotation holds it while taking the state read lock, so
/// durability must rank *below* dataset state even though the WAL
/// device itself ranks last.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum LockRank {
    /// `DatasetRegistry::map` — the name → dataset table.
    Registry = 0,
    /// `DatasetEntry::durability` — WAL attachment; held across
    /// append-fsync-apply and across snapshot rotation.
    Durability = 1,
    /// `DatasetEntry::state` — the epoch-versioned graph + catalog.
    DatasetState = 2,
    /// `DatasetEntry::pending` — the buffered update delta.
    PendingDelta = 3,
    /// `Engine`'s estimate LRU cache.
    Cache = 4,
    /// Metrics-adjacent state: slow-query log, admission counters,
    /// catalog fill statistics.
    Metrics = 5,
    /// Worker-pool shard state and lifecycle/drain signalling.
    PoolShard = 6,
    /// `vfs::FaultStorage` interior — the simulated device. Last:
    /// storage calls happen under any of the above.
    Wal = 7,
}

impl LockRank {
    /// Stable human-readable name used in diagnostics and docs.
    pub const fn name(self) -> &'static str {
        match self {
            LockRank::Registry => "registry",
            LockRank::Durability => "durability",
            LockRank::DatasetState => "dataset-state",
            LockRank::PendingDelta => "pending-delta",
            LockRank::Cache => "cache",
            LockRank::Metrics => "metrics",
            LockRank::PoolShard => "pool-shard",
            LockRank::Wal => "wal",
        }
    }
}

impl fmt::Display for LockRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` (rank {})", self.name(), *self as u8)
    }
}

/// A lock acquisition failed because another thread panicked while
/// holding the lock. Returned by the `checked_*` methods; the plain
/// `lock()`/`read()`/`write()` methods panic on it instead.
#[derive(Clone, Copy, Debug)]
pub struct LockPoisoned {
    #[cfg(debug_assertions)]
    rank: LockRank,
}

impl fmt::Display for LockPoisoned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        #[cfg(debug_assertions)]
        return write!(
            f,
            "lock {} poisoned: a thread panicked while holding it",
            self.rank
        );
        #[cfg(not(debug_assertions))]
        write!(f, "lock poisoned: a thread panicked while holding it")
    }
}

impl LockPoisoned {
    /// Escalate to a panic — for infallible APIs with no error channel.
    /// Lives here so the panic-path lint's request-path files stay free
    /// of panic tokens: the decision to die is ceg-core's, the caller
    /// only names it.
    #[track_caller]
    pub fn abort(self) -> ! {
        panic!("{self}")
    }
}

impl std::error::Error for LockPoisoned {}

#[cfg(debug_assertions)]
mod checker {
    use super::LockRank;
    use std::cell::{Cell, RefCell};
    use std::panic::Location;

    struct Held {
        rank: LockRank,
        site: &'static Location<'static>,
        token: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: Cell<u64> = const { Cell::new(0) };
    }

    /// Record an acquisition attempt at `site`. Panics if `rank` is not
    /// strictly above every rank this thread already holds. Returns a
    /// token the matching guard passes back to [`release`] on drop (by
    /// token, not stack order: guards may be dropped out of order).
    pub fn acquire(rank: LockRank, site: &'static Location<'static>) -> u64 {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(worst) = held.iter().max_by_key(|h| h.rank) {
                if rank <= worst.rank {
                    panic!(
                        "lock-rank violation: acquiring {} at {} while \
                         holding {} acquired at {}; locks must be taken in \
                         strictly ascending LockRank order (ceg_core::sync)",
                        rank, site, worst.rank, worst.site
                    );
                }
            }
            let token = NEXT_TOKEN.with(|t| {
                let v = t.get();
                t.set(v + 1);
                v
            });
            held.push(Held { rank, site, token });
            token
        })
    }

    pub fn release(token: u64) {
        // May run during unwinding from an unrelated panic; never
        // panics itself (a missing token is simply ignored).
        let _ = HELD.try_with(|held| {
            if let Ok(mut held) = held.try_borrow_mut() {
                if let Some(pos) = held.iter().position(|h| h.token == token) {
                    held.swap_remove(pos);
                }
            }
        });
    }
}

/// `std::sync::Mutex` carrying a declared [`LockRank`]; the only
/// mutex the lock-discipline lint permits outside `ceg-core`.
#[derive(Debug)]
pub struct OrderedMutex<T> {
    #[cfg(debug_assertions)]
    rank: LockRank,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`OrderedMutex`]; pops its rank off the thread's
/// held stack on drop.
pub struct OrderedMutexGuard<'a, T> {
    // `Option` so `wait_timeout` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    token: u64,
}

impl<T> OrderedMutex<T> {
    pub const fn new(rank: LockRank, value: T) -> Self {
        // `rank` is only stored when the checker is compiled in.
        let _ = rank;
        Self {
            #[cfg(debug_assertions)]
            rank,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire, panicking on rank violation (debug builds) or poison.
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        match self.checked_lock() {
            Ok(guard) => guard,
            Err(err) => panic!("{err}"),
        }
    }

    /// Acquire, surfacing poison as an error instead of a panic. Rank
    /// violations still panic: they are programming bugs, not runtime
    /// conditions to recover from.
    #[track_caller]
    pub fn checked_lock(&self) -> Result<OrderedMutexGuard<'_, T>, LockPoisoned> {
        #[cfg(debug_assertions)]
        let token = checker::acquire(self.rank, Location::caller());
        match self.inner.lock() {
            Ok(guard) => Ok(OrderedMutexGuard {
                inner: Some(guard),
                #[cfg(debug_assertions)]
                token,
            }),
            Err(_) => {
                #[cfg(debug_assertions)]
                checker::release(token);
                Err(LockPoisoned {
                    #[cfg(debug_assertions)]
                    rank: self.rank,
                })
            }
        }
    }

    /// Exclusive access through `&mut self`: no locking, no rank entry
    /// (a mutable borrow proves no other thread holds the lock).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the value (poison is irrelevant
    /// once the lock can no longer be shared).
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by wait_timeout")
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by wait_timeout")
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        checker::release(self.token);
    }
}

/// Block on `cv` with an [`OrderedMutexGuard`], the ranked counterpart
/// of [`Condvar::wait_timeout`]. The rank entry stays on the held
/// stack for the duration of the wait — the thread is blocked, and on
/// wake it holds the mutex again, so the stack is accurate throughout.
///
/// Panics if the mutex was poisoned while unlocked during the wait.
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: OrderedMutexGuard<'a, T>,
    dur: Duration,
) -> (OrderedMutexGuard<'a, T>, WaitTimeoutResult) {
    let mut guard = guard;
    let std_guard = guard.inner.take().expect("guard taken by wait_timeout");
    #[cfg(debug_assertions)]
    let token = guard.token;
    // Forget the emptied guard so its Drop does not release the rank
    // entry we are about to hand to the reacquired guard.
    std::mem::forget(guard);
    match cv.wait_timeout(std_guard, dur) {
        Ok((reacquired, result)) => (
            OrderedMutexGuard {
                inner: Some(reacquired),
                #[cfg(debug_assertions)]
                token,
            },
            result,
        ),
        Err(_) => {
            #[cfg(debug_assertions)]
            checker::release(token);
            panic!("lock poisoned during condvar wait");
        }
    }
}

/// `std::sync::RwLock` carrying a declared [`LockRank`]. Read
/// acquisitions participate in the rank discipline exactly like
/// writes: read→read nesting at equal rank is forbidden too (writer
/// priority can deadlock recursive readers).
#[derive(Debug)]
pub struct OrderedRwLock<T> {
    #[cfg(debug_assertions)]
    rank: LockRank,
    inner: std::sync::RwLock<T>,
}

/// RAII read guard for [`OrderedRwLock`].
pub struct OrderedReadGuard<'a, T> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    token: u64,
}

/// RAII write guard for [`OrderedRwLock`].
pub struct OrderedWriteGuard<'a, T> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    token: u64,
}

impl<T> OrderedRwLock<T> {
    pub const fn new(rank: LockRank, value: T) -> Self {
        let _ = rank;
        Self {
            #[cfg(debug_assertions)]
            rank,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Shared acquire, panicking on rank violation or poison.
    #[track_caller]
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        match self.checked_read() {
            Ok(guard) => guard,
            Err(err) => panic!("{err}"),
        }
    }

    /// Exclusive acquire, panicking on rank violation or poison.
    #[track_caller]
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        match self.checked_write() {
            Ok(guard) => guard,
            Err(err) => panic!("{err}"),
        }
    }

    /// Shared acquire, surfacing poison as an error.
    #[track_caller]
    pub fn checked_read(&self) -> Result<OrderedReadGuard<'_, T>, LockPoisoned> {
        #[cfg(debug_assertions)]
        let token = checker::acquire(self.rank, Location::caller());
        match self.inner.read() {
            Ok(guard) => Ok(OrderedReadGuard {
                inner: guard,
                #[cfg(debug_assertions)]
                token,
            }),
            Err(_) => {
                #[cfg(debug_assertions)]
                checker::release(token);
                Err(LockPoisoned {
                    #[cfg(debug_assertions)]
                    rank: self.rank,
                })
            }
        }
    }

    /// Exclusive acquire, surfacing poison as an error.
    #[track_caller]
    pub fn checked_write(&self) -> Result<OrderedWriteGuard<'_, T>, LockPoisoned> {
        #[cfg(debug_assertions)]
        let token = checker::acquire(self.rank, Location::caller());
        match self.inner.write() {
            Ok(guard) => Ok(OrderedWriteGuard {
                inner: guard,
                #[cfg(debug_assertions)]
                token,
            }),
            Err(_) => {
                #[cfg(debug_assertions)]
                checker::release(token);
                Err(LockPoisoned {
                    #[cfg(debug_assertions)]
                    rank: self.rank,
                })
            }
        }
    }

    /// Exclusive access through `&mut self`: no locking, no rank entry.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for OrderedReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        checker::release(self.token);
    }
}

impl<T> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for OrderedWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        checker::release(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = err.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = err.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            String::from("<non-string panic payload>")
        }
    }

    #[test]
    fn ascending_acquisition_is_allowed() {
        let a = OrderedMutex::new(LockRank::Registry, 1u32);
        let b = OrderedMutex::new(LockRank::DatasetState, 2u32);
        let c = OrderedMutex::new(LockRank::Wal, 3u32);
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.lock();
        assert_eq!(*ga + *gb + *gc, 6);
    }

    #[test]
    fn out_of_order_drop_keeps_stack_consistent() {
        let a = OrderedMutex::new(LockRank::Registry, ());
        let b = OrderedMutex::new(LockRank::Cache, ());
        let c = OrderedMutex::new(LockRank::Wal, ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // dropped below gb: release is by token, not LIFO
        let gc = c.lock();
        drop(gb);
        drop(gc);
        // After all guards drop, any rank is acquirable again.
        let _ = a.lock();
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "lock-rank checker compiles out in release builds"
    )]
    fn inverted_acquisition_in_spawned_thread_panics_with_both_sites() {
        let low = Arc::new(OrderedMutex::new(LockRank::Registry, ()));
        let high = Arc::new(OrderedMutex::new(LockRank::Wal, ()));
        let (low2, high2) = (Arc::clone(&low), Arc::clone(&high));
        let handle = std::thread::spawn(move || {
            let _wal = high2.lock(); // rank 7 first...
            let _reg = low2.lock(); // ...then rank 0: must panic
        });
        let err = handle.join().expect_err("inverted order must panic");
        let msg = panic_message(err);
        assert!(msg.contains("lock-rank violation"), "missing header: {msg}");
        assert!(msg.contains("`registry` (rank 0)"), "missing rank: {msg}");
        assert!(msg.contains("`wal` (rank 7)"), "missing rank: {msg}");
        // Both acquisition sites are named, down to this file and line.
        assert_eq!(
            msg.matches("sync.rs:").count(),
            2,
            "expected two acquisition sites in: {msg}"
        );
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "lock-rank checker compiles out in release builds"
    )]
    fn equal_rank_nesting_panics() {
        let a = OrderedRwLock::new(LockRank::DatasetState, ());
        let b = OrderedRwLock::new(LockRank::DatasetState, ());
        let _ga = a.read();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.read();
        }))
        .expect_err("equal-rank nesting must panic");
        assert!(panic_message(err).contains("lock-rank violation"));
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "lock-rank checker compiles out in release builds"
    )]
    fn violation_unwinds_clean() {
        // A caught rank violation must not leave a stale rank on the
        // thread stack (guards that never existed cannot pop it).
        let high = OrderedMutex::new(LockRank::Wal, ());
        let low = OrderedMutex::new(LockRank::Registry, ());
        {
            let _g = high.lock();
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = low.lock();
            }));
        }
        // All guards dropped: both locks acquirable again, any order.
        let _g = low.lock();
        drop(_g);
        let _g = high.lock();
    }

    #[test]
    fn checked_lock_reports_poison() {
        let m = Arc::new(OrderedMutex::new(LockRank::Cache, 7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        let err = m.checked_lock().expect_err("must be poisoned");
        assert!(err.to_string().contains("poisoned"), "{err}");
        // The panicking variant panics with the same message.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = m.lock();
        }))
        .expect_err("lock() must panic on poison");
        assert!(panic_message(err).contains("poisoned"));
    }

    #[test]
    fn checked_rwlock_reports_poison() {
        let l = Arc::new(OrderedRwLock::new(LockRank::DatasetState, 0u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert!(l.checked_read().is_err());
        assert!(l.checked_write().is_err());
    }

    #[test]
    fn condvar_wait_timeout_round_trips_guard() {
        let m = OrderedMutex::new(LockRank::PoolShard, false);
        let cv = Condvar::new();
        let guard = m.lock();
        let (guard, result) = wait_timeout(&cv, guard, Duration::from_millis(5));
        assert!(result.timed_out());
        assert!(!*guard);
        drop(guard);
        // The rank entry was carried across the wait, not leaked.
        let _again = m.lock();
    }

    #[test]
    fn rank_checks_compile_out() {
        assert_eq!(RANK_CHECKS_ENABLED, cfg!(debug_assertions));
        #[cfg(not(debug_assertions))]
        {
            // Zero release-build cost: the rank field is cfg'd away, so
            // the wrapper is layout-identical to the std primitive.
            assert_eq!(
                std::mem::size_of::<OrderedMutex<u64>>(),
                std::mem::size_of::<std::sync::Mutex<u64>>()
            );
            assert_eq!(
                std::mem::size_of::<OrderedRwLock<u64>>(),
                std::mem::size_of::<std::sync::RwLock<u64>>()
            );
        }
        #[cfg(debug_assertions)]
        {
            assert!(
                std::mem::size_of::<OrderedMutex<u64>>()
                    >= std::mem::size_of::<std::sync::Mutex<u64>>()
            );
        }
    }

    #[test]
    fn get_mut_and_into_inner_skip_ranking() {
        let mut m = OrderedMutex::new(LockRank::Wal, 1u32);
        // Holding a higher rank while using `&mut` access is fine: no
        // lock is taken.
        let other = OrderedMutex::new(LockRank::Registry, ());
        let _g = other.lock();
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 2);
    }
}
