//! Q-error bookkeeping and the paper's distribution summaries.
//!
//! The paper reports *signed log q-errors*: `log10(max(c/e, e/c))`, with a
//! negative sign for underestimates, plus box-plot percentiles and a
//! trimmed mean excluding the top 10% of magnitudes (Section 6.2).

/// Signed log10 q-error of one estimate: negative = underestimate.
/// Zero-vs-zero is a perfect estimate (0.0); a one-sided zero saturates.
pub fn signed_log_qerror(estimate: f64, truth: f64) -> f64 {
    const SATURATE: f64 = 12.0; // |log10 q| cap for degenerate cases
    if truth <= 0.0 && estimate <= 0.0 {
        return 0.0;
    }
    if estimate <= 0.0 {
        return -SATURATE;
    }
    if truth <= 0.0 {
        return SATURATE;
    }
    let lq = (estimate / truth).log10();
    lq.clamp(-SATURATE, SATURATE)
}

/// Box-plot style summary of a signed-log-q-error distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct QErrorSummary {
    pub count: usize,
    /// Queries the estimator could not answer (timeouts / missing stats).
    pub failures: usize,
    pub p25: f64,
    pub median: f64,
    pub p75: f64,
    pub min: f64,
    pub max: f64,
    /// Mean of |log q| after dropping the top 10% magnitudes, signed by
    /// the mean's direction — the red dashed line of the paper's plots.
    pub trimmed_mean: f64,
    /// Fraction of underestimates (signed error < 0).
    pub under_fraction: f64,
}

impl QErrorSummary {
    /// Summarize signed log q-errors; `failures` counts skipped queries.
    pub fn from_signed(mut errors: Vec<f64>, failures: usize) -> Self {
        if errors.is_empty() {
            return QErrorSummary {
                count: 0,
                failures,
                p25: f64::NAN,
                median: f64::NAN,
                p75: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                trimmed_mean: f64::NAN,
                under_fraction: f64::NAN,
            };
        }
        errors.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            let idx = ((errors.len() - 1) as f64 * p).round() as usize;
            errors[idx]
        };
        let under = errors.iter().filter(|&&e| e < 0.0).count();

        // trimmed mean over magnitudes (drop top 10% magnitudes)
        let mut mags: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
        mags.sort_by(f64::total_cmp);
        let keep = ((mags.len() as f64) * 0.9).ceil() as usize;
        let keep = keep.clamp(1, mags.len());
        let mean_mag = mags[..keep].iter().sum::<f64>() / keep as f64;
        let mean_sign = if errors.iter().sum::<f64>() < 0.0 {
            -1.0
        } else {
            1.0
        };

        QErrorSummary {
            count: errors.len(),
            failures,
            p25: pct(0.25),
            median: pct(0.5),
            p75: pct(0.75),
            min: errors[0],
            max: *errors.last().unwrap(),
            trimmed_mean: mean_sign * mean_mag,
            under_fraction: under as f64 / errors.len() as f64,
        }
    }

    /// Render one ASCII box-plot row (log10 scale), `width` characters
    /// spanning `[-span, +span]`.
    pub fn ascii_box(&self, span: f64, width: usize) -> String {
        if self.count == 0 {
            return format!("{:width$}", "(no data)", width = width);
        }
        let mut row: Vec<char> = vec![' '; width];
        let pos = |v: f64| -> usize {
            let t = ((v + span) / (2.0 * span)).clamp(0.0, 1.0);
            ((width - 1) as f64 * t).round() as usize
        };
        let (lo, hi) = (pos(self.min), pos(self.max));
        for c in row.iter_mut().take(hi + 1).skip(lo) {
            *c = '-';
        }
        let (b0, b1) = (pos(self.p25), pos(self.p75));
        for c in row.iter_mut().take(b1 + 1).skip(b0) {
            *c = '=';
        }
        row[pos(self.median)] = '|';
        let zero = pos(0.0);
        if row[zero] == ' ' {
            row[zero] = '.';
        }
        row.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_log_qerror_signs() {
        assert_eq!(signed_log_qerror(100.0, 100.0), 0.0);
        assert!((signed_log_qerror(1000.0, 100.0) - 1.0).abs() < 1e-12);
        assert!((signed_log_qerror(10.0, 100.0) + 1.0).abs() < 1e-12);
        assert_eq!(signed_log_qerror(0.0, 0.0), 0.0);
        assert_eq!(signed_log_qerror(0.0, 5.0), -12.0);
        assert_eq!(signed_log_qerror(5.0, 0.0), 12.0);
    }

    #[test]
    fn summary_percentiles() {
        let errs = vec![-2.0, -1.0, 0.0, 1.0, 2.0];
        let s = QErrorSummary::from_signed(errs, 0);
        assert_eq!(s.median, 0.0);
        assert_eq!(s.p25, -1.0);
        assert_eq!(s.p75, 1.0);
        assert_eq!(s.min, -2.0);
        assert_eq!(s.max, 2.0);
        assert!((s.under_fraction - 0.4).abs() < 1e-12);
    }

    #[test]
    fn trimmed_mean_drops_outliers() {
        let mut errs = vec![0.1; 19];
        errs.push(100.0); // one extreme outlier = exactly the top 10%
        let s = QErrorSummary::from_signed(errs, 0);
        assert!(s.trimmed_mean < 1.0, "trimmed mean {}", s.trimmed_mean);
    }

    #[test]
    fn empty_summary_is_nan() {
        let s = QErrorSummary::from_signed(vec![], 3);
        assert_eq!(s.count, 0);
        assert_eq!(s.failures, 3);
        assert!(s.median.is_nan());
    }

    #[test]
    fn ascii_box_renders() {
        let s = QErrorSummary::from_signed(vec![-1.0, 0.0, 1.0, 2.0], 0);
        let row = s.ascii_box(4.0, 41);
        assert_eq!(row.len(), 41);
        assert!(row.contains('|'));
        assert!(row.contains('='));
    }
}
