//! Experiment driver: run estimators over a workload, collect q-error
//! distributions and timings, render report tables.

use std::time::Instant;

use ceg_catalog::MarkovTable;
use ceg_estimators::CardinalityEstimator;
use ceg_graph::LabeledGraph;

use crate::qerror::{signed_log_qerror, QErrorSummary};
use crate::workloads::WorkloadQuery;

/// Build the workload-specific Markov table (the paper builds statistics
/// per workload, Section 6) on up to `parallelism` worker threads via the
/// two-phase [`MarkovTable::build_parallel`]: sub-patterns are deduped
/// across the whole workload first, then counted in parallel. The
/// resulting table is identical at every `parallelism`.
pub fn build_markov_parallel(
    graph: &LabeledGraph,
    workload: &[WorkloadQuery],
    h: usize,
    parallelism: usize,
) -> MarkovTable {
    let qs: Vec<_> = workload.iter().map(|q| q.query.clone()).collect();
    MarkovTable::build_parallel(graph, &qs, h, parallelism)
}

/// Result of one estimator over one workload.
#[derive(Debug, Clone)]
pub struct EstimatorReport {
    pub name: String,
    pub summary: QErrorSummary,
    /// Mean estimation latency in microseconds.
    pub mean_time_us: f64,
}

/// Run each estimator over the workload.
pub fn run_estimators(
    workload: &[WorkloadQuery],
    estimators: &mut [Box<dyn CardinalityEstimator + '_>],
) -> Vec<EstimatorReport> {
    estimators
        .iter_mut()
        .map(|est| {
            let mut errors = Vec::with_capacity(workload.len());
            let mut failures = 0usize;
            let mut total_time = 0.0f64;
            for wq in workload {
                let t0 = Instant::now();
                let e = est.estimate(&wq.query);
                total_time += t0.elapsed().as_secs_f64() * 1e6;
                match e {
                    Some(v) => errors.push(signed_log_qerror(v, wq.truth)),
                    None => failures += 1,
                }
            }
            EstimatorReport {
                name: est.name(),
                summary: QErrorSummary::from_signed(errors, failures),
                mean_time_us: if workload.is_empty() {
                    0.0
                } else {
                    total_time / workload.len() as f64
                },
            }
        })
        .collect()
}

/// Run each estimator over the workload with up to `parallelism` worker
/// threads (a `parallelism` of 0 or 1 is the serial path).
///
/// Queries are split into contiguous chunks; each worker builds its own
/// estimator set via `make_estimators` and processes one chunk at a time
/// on the shared scoped worker pool (`ceg_service::pool`). Per-query
/// results are merged back **in workload order**, so for deterministic
/// estimators the q-error summaries — and therefore the rendered report
/// tables — are byte-identical to [`run_estimators`] at any parallelism.
/// (Sampling estimators carry their own RNG; a fresh instance per chunk
/// means their per-query draws differ from the serial path, but the
/// output remains deterministic for a fixed `parallelism`.) Timings are
/// per-query means and stay comparable, not identical.
pub fn run_estimators_parallel<'a>(
    workload: &[WorkloadQuery],
    make_estimators: impl Fn() -> Vec<Box<dyn CardinalityEstimator + 'a>> + Sync,
    parallelism: usize,
) -> Vec<EstimatorReport> {
    if parallelism <= 1 || workload.len() <= 1 {
        let mut ests = make_estimators();
        return run_estimators(workload, &mut ests);
    }
    let chunk_len = workload.len().div_ceil(parallelism);
    let chunks: Vec<&[WorkloadQuery]> = workload.chunks(chunk_len).collect();
    // Each job: run a fresh estimator set over one chunk, reporting per
    // estimator the signed errors (in chunk order), failures and time.
    let jobs: Vec<_> = chunks
        .iter()
        .map(|chunk| {
            let make = &make_estimators;
            move || -> Vec<(String, Vec<f64>, usize, f64)> {
                let mut ests = make();
                ests.iter_mut()
                    .map(|est| {
                        let mut errors = Vec::with_capacity(chunk.len());
                        let mut failures = 0usize;
                        let mut total_time = 0.0f64;
                        for wq in *chunk {
                            let t0 = Instant::now();
                            let e = est.estimate(&wq.query);
                            total_time += t0.elapsed().as_secs_f64() * 1e6;
                            match e {
                                Some(v) => errors.push(signed_log_qerror(v, wq.truth)),
                                None => failures += 1,
                            }
                        }
                        (est.name(), errors, failures, total_time)
                    })
                    .collect()
            }
        })
        .collect();
    let per_chunk = ceg_service::pool::run_scoped(parallelism, jobs);
    // Merge chunk results in chunk (= workload) order, per estimator.
    let num_estimators = per_chunk.first().map_or(0, |c| c.len());
    (0..num_estimators)
        .map(|e| {
            let mut errors = Vec::with_capacity(workload.len());
            let mut failures = 0usize;
            let mut total_time = 0.0f64;
            for chunk in &per_chunk {
                let (_, errs, fails, time) = &chunk[e];
                errors.extend_from_slice(errs);
                failures += fails;
                total_time += time;
            }
            EstimatorReport {
                name: per_chunk[0][e].0.clone(),
                summary: QErrorSummary::from_signed(errors, failures),
                mean_time_us: if workload.is_empty() {
                    0.0
                } else {
                    total_time / workload.len() as f64
                },
            }
        })
        .collect()
}

/// Render the reports as a text table with ASCII box plots — the textual
/// equivalent of the paper's box-plot figures.
pub fn render_table(title: &str, reports: &[EstimatorReport]) -> String {
    let span = reports
        .iter()
        .filter(|r| r.summary.count > 0)
        .map(|r| r.summary.max.abs().max(r.summary.min.abs()))
        .fold(1.0f64, f64::max)
        .ceil();
    let width = 41usize;
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<18} {:>7} {:>7} {:>7} {:>7} {:>6} {:>9}  {}\n",
        "estimator",
        "p25",
        "median",
        "p75",
        "mean*",
        "under",
        "time(us)",
        format_args!("log10 q-error in [-{span}, {span}] ('|' median, '=' IQR, '.' zero)"),
    ));
    for r in reports {
        let s = &r.summary;
        if s.count == 0 {
            out.push_str(&format!(
                "{:<18} {:>7} {:>7} {:>7} {:>7} {:>6} {:>9.1}  (all {} queries failed)\n",
                r.name, "-", "-", "-", "-", "-", r.mean_time_us, s.failures
            ));
            continue;
        }
        out.push_str(&format!(
            "{:<18} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>5.0}% {:>9.1}  [{}]{}\n",
            r.name,
            s.p25,
            s.median,
            s.p75,
            s.trimmed_mean,
            s.under_fraction * 100.0,
            r.mean_time_us,
            s.ascii_box(span, width),
            if s.failures > 0 {
                format!(" ({} failed)", s.failures)
            } else {
                String::new()
            }
        ));
    }
    out
}

#[cfg(test)]
mod markov_tests {
    use super::*;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    #[test]
    fn workload_markov_build_is_parallelism_invariant() {
        let mut b = GraphBuilder::new(8);
        for i in 0..6 {
            b.add_edge(i, i + 1, (i % 2) as u16);
        }
        let g = b.build();
        let wq = |q: ceg_query::QueryGraph| WorkloadQuery {
            query: q,
            template: "t".into(),
            truth: 1.0,
        };
        let w = vec![
            wq(templates::path(2, &[0, 1])),
            wq(templates::path(3, &[0, 1, 0])),
        ];
        let serial = build_markov_parallel(&g, &w, 2, 1);
        let parallel = build_markov_parallel(&g, &w, 2, 4);
        assert_eq!(serial.len(), parallel.len());
        for (p, c) in serial.iter() {
            assert_eq!(parallel.card(p), Some(c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_query::QueryGraph;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> String {
            format!("fixed-{}", self.0)
        }
        fn estimate(&mut self, _q: &QueryGraph) -> Option<f64> {
            Some(self.0)
        }
    }

    struct Failing;
    impl CardinalityEstimator for Failing {
        fn name(&self) -> String {
            "failing".into()
        }
        fn estimate(&mut self, _q: &QueryGraph) -> Option<f64> {
            None
        }
    }

    fn workload() -> Vec<WorkloadQuery> {
        let q = ceg_query::templates::path(1, &[0]);
        vec![
            WorkloadQuery {
                query: q.clone(),
                template: "t".into(),
                truth: 10.0,
            },
            WorkloadQuery {
                query: q,
                template: "t".into(),
                truth: 100.0,
            },
        ]
    }

    #[test]
    fn runner_collects_errors_and_failures() {
        let w = workload();
        let mut ests: Vec<Box<dyn CardinalityEstimator>> =
            vec![Box::new(Fixed(10.0)), Box::new(Failing)];
        let reports = run_estimators(&w, &mut ests);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].summary.count, 2);
        assert_eq!(reports[0].summary.failures, 0);
        // estimates 10 vs truths 10, 100: errors {0, -1}
        assert_eq!(reports[0].summary.max, 0.0);
        assert_eq!(reports[0].summary.min, -1.0);
        assert_eq!(reports[1].summary.failures, 2);
        assert_eq!(reports[1].summary.count, 0);
    }

    #[test]
    fn table_renders_without_panic() {
        let w = workload();
        let mut ests: Vec<Box<dyn CardinalityEstimator>> =
            vec![Box::new(Fixed(50.0)), Box::new(Failing)];
        let reports = run_estimators(&w, &mut ests);
        let table = render_table("demo", &reports);
        assert!(table.contains("fixed-50"));
        assert!(table.contains("failing"));
        assert!(table.contains("demo"));
    }
}

/// Group a workload by template name and run the estimator set on each
/// group — the paper's per-template supplementary analysis (Section 6.2:
/// "our charts in which we evaluate the 9 estimators on each query
/// template can be found in our github repo").
pub fn run_by_template<'a>(
    workload: &[WorkloadQuery],
    make_estimators: impl Fn() -> Vec<Box<dyn CardinalityEstimator + 'a>>,
) -> Vec<(String, Vec<EstimatorReport>)> {
    let mut templates: Vec<String> = workload.iter().map(|q| q.template.clone()).collect();
    templates.sort();
    templates.dedup();
    templates
        .into_iter()
        .map(|t| {
            let group: Vec<WorkloadQuery> = workload
                .iter()
                .filter(|q| q.template == t)
                .cloned()
                .collect();
            let mut ests = make_estimators();
            let reports = run_estimators(&group, &mut ests);
            (t, reports)
        })
        .collect()
}

/// [`run_by_template`] with a `parallelism` knob: each template group runs
/// through [`run_estimators_parallel`], so groups keep their sorted order
/// and per-group reports match the serial path for deterministic
/// estimators.
pub fn run_by_template_parallel<'a>(
    workload: &[WorkloadQuery],
    make_estimators: impl Fn() -> Vec<Box<dyn CardinalityEstimator + 'a>> + Sync,
    parallelism: usize,
) -> Vec<(String, Vec<EstimatorReport>)> {
    let mut templates: Vec<String> = workload.iter().map(|q| q.template.clone()).collect();
    templates.sort();
    templates.dedup();
    templates
        .into_iter()
        .map(|t| {
            let group: Vec<WorkloadQuery> = workload
                .iter()
                .filter(|q| q.template == t)
                .cloned()
                .collect();
            let reports = run_estimators_parallel(&group, &make_estimators, parallelism);
            (t, reports)
        })
        .collect()
}

#[cfg(test)]
mod template_tests {
    use super::*;
    use ceg_query::QueryGraph;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn estimate(&mut self, _q: &QueryGraph) -> Option<f64> {
            Some(self.0)
        }
    }

    #[test]
    fn groups_by_template() {
        let q = ceg_query::templates::path(1, &[0]);
        let wq = |t: &str, truth: f64| WorkloadQuery {
            query: q.clone(),
            template: t.into(),
            truth,
        };
        let w = vec![wq("a", 10.0), wq("b", 20.0), wq("a", 30.0)];
        let grouped = run_by_template(&w, || {
            vec![Box::new(Fixed(10.0)) as Box<dyn CardinalityEstimator>]
        });
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, "a");
        assert_eq!(grouped[0].1[0].summary.count, 2);
        assert_eq!(grouped[1].1[0].summary.count, 1);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use ceg_query::QueryGraph;

    /// Deterministic estimator whose value depends on the query's edge
    /// count, so chunk boundaries would show up as wrong summaries.
    struct EdgeCount;
    impl CardinalityEstimator for EdgeCount {
        fn name(&self) -> String {
            "edge-count".into()
        }
        fn estimate(&mut self, q: &QueryGraph) -> Option<f64> {
            Some(10.0 * (q.num_edges() as f64 + 1.0))
        }
    }

    struct FailEven(usize);
    impl CardinalityEstimator for FailEven {
        fn name(&self) -> String {
            "fail-even".into()
        }
        fn estimate(&mut self, _q: &QueryGraph) -> Option<f64> {
            self.0 += 1;
            if self.0.is_multiple_of(2) {
                None
            } else {
                Some(50.0)
            }
        }
    }

    fn big_workload() -> Vec<WorkloadQuery> {
        (0..37)
            .map(|i| WorkloadQuery {
                query: ceg_query::templates::path(1 + i % 3, &[0, 1, 0][..1 + i % 3]),
                template: format!("t{}", i % 4),
                truth: 10.0 + i as f64,
            })
            .collect()
    }

    fn make() -> Vec<Box<dyn CardinalityEstimator + 'static>> {
        vec![Box::new(EdgeCount)]
    }

    #[test]
    fn parallel_reports_match_serial() {
        let w = big_workload();
        let serial = {
            let mut ests = make();
            run_estimators(&w, &mut ests)
        };
        for parallelism in [1, 2, 3, 8, 64] {
            let parallel = run_estimators_parallel(&w, make, parallelism);
            assert_eq!(parallel.len(), serial.len());
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.name, s.name);
                assert_eq!(p.summary, s.summary, "parallelism={parallelism}");
            }
            // The non-timing report columns are byte-identical.
            let strip = |csv: String| {
                csv.lines()
                    .map(|l| l.rsplit_once(',').unwrap().0.to_string())
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                strip(render_csv("d", "w", &parallel)),
                strip(render_csv("d", "w", &serial))
            );
        }
    }

    #[test]
    fn parallel_counts_failures_like_serial() {
        // FailEven is stateful per instance; chunking resets it, so make
        // the chunk boundary explicit: parallelism 1 must equal serial.
        let w = big_workload();
        let make =
            || -> Vec<Box<dyn CardinalityEstimator + 'static>> { vec![Box::new(FailEven(0))] };
        let serial = {
            let mut ests = make();
            run_estimators(&w, &mut ests)
        };
        let parallel = run_estimators_parallel(&w, make, 1);
        assert_eq!(parallel[0].summary, serial[0].summary);
        // At higher parallelism the total count is preserved even though
        // the per-chunk state resets.
        let parallel4 = run_estimators_parallel(&w, make, 4);
        assert_eq!(
            parallel4[0].summary.count + parallel4[0].summary.failures,
            w.len()
        );
    }

    #[test]
    fn by_template_parallel_matches_serial() {
        let w = big_workload();
        let serial = run_by_template(&w, make);
        let parallel = run_by_template_parallel(&w, make, 4);
        assert_eq!(serial.len(), parallel.len());
        for ((ts, rs), (tp, rp)) in serial.iter().zip(&parallel) {
            assert_eq!(ts, tp);
            for (s, p) in rs.iter().zip(rp) {
                assert_eq!(s.summary, p.summary);
            }
        }
    }
}

/// Render reports as CSV (one row per estimator) for external plotting
/// tools; the exact numbers behind the ASCII box plots.
pub fn render_csv(dataset: &str, workload: &str, reports: &[EstimatorReport]) -> String {
    let mut out = String::from(
        "dataset,workload,estimator,count,failures,p25,median,p75,min,max,trimmed_mean,under_fraction,mean_time_us\n",
    );
    for r in reports {
        let s = &r.summary;
        out.push_str(&format!(
            "{dataset},{workload},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.3}\n",
            r.name,
            s.count,
            s.failures,
            s.p25,
            s.median,
            s.p75,
            s.min,
            s.max,
            s.trimmed_mean,
            s.under_fraction,
            r.mean_time_us
        ));
    }
    out
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use ceg_query::QueryGraph;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn estimate(&mut self, _q: &QueryGraph) -> Option<f64> {
            Some(self.0)
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let q = ceg_query::templates::path(1, &[0]);
        let w = vec![WorkloadQuery {
            query: q,
            template: "t".into(),
            truth: 10.0,
        }];
        let mut ests: Vec<Box<dyn CardinalityEstimator>> = vec![Box::new(Fixed(10.0))];
        let reports = run_estimators(&w, &mut ests);
        let csv = render_csv("imdb", "job", &reports);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("dataset,workload,estimator"));
        assert!(lines[1].starts_with("imdb,job,fixed,1,0,"));
    }
}
