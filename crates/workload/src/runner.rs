//! Experiment driver: run estimators over a workload, collect q-error
//! distributions and timings, render report tables.

use std::time::Instant;

use ceg_estimators::CardinalityEstimator;

use crate::qerror::{signed_log_qerror, QErrorSummary};
use crate::workloads::WorkloadQuery;

/// Result of one estimator over one workload.
#[derive(Debug, Clone)]
pub struct EstimatorReport {
    pub name: String,
    pub summary: QErrorSummary,
    /// Mean estimation latency in microseconds.
    pub mean_time_us: f64,
}

/// Run each estimator over the workload.
pub fn run_estimators(
    workload: &[WorkloadQuery],
    estimators: &mut [Box<dyn CardinalityEstimator + '_>],
) -> Vec<EstimatorReport> {
    estimators
        .iter_mut()
        .map(|est| {
            let mut errors = Vec::with_capacity(workload.len());
            let mut failures = 0usize;
            let mut total_time = 0.0f64;
            for wq in workload {
                let t0 = Instant::now();
                let e = est.estimate(&wq.query);
                total_time += t0.elapsed().as_secs_f64() * 1e6;
                match e {
                    Some(v) => errors.push(signed_log_qerror(v, wq.truth)),
                    None => failures += 1,
                }
            }
            EstimatorReport {
                name: est.name(),
                summary: QErrorSummary::from_signed(errors, failures),
                mean_time_us: if workload.is_empty() {
                    0.0
                } else {
                    total_time / workload.len() as f64
                },
            }
        })
        .collect()
}

/// Render the reports as a text table with ASCII box plots — the textual
/// equivalent of the paper's box-plot figures.
pub fn render_table(title: &str, reports: &[EstimatorReport]) -> String {
    let span = reports
        .iter()
        .filter(|r| r.summary.count > 0)
        .map(|r| r.summary.max.abs().max(r.summary.min.abs()))
        .fold(1.0f64, f64::max)
        .ceil();
    let width = 41usize;
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<18} {:>7} {:>7} {:>7} {:>7} {:>6} {:>9}  {}\n",
        "estimator",
        "p25",
        "median",
        "p75",
        "mean*",
        "under",
        "time(us)",
        format_args!("log10 q-error in [-{span}, {span}] ('|' median, '=' IQR, '.' zero)"),
    ));
    for r in reports {
        let s = &r.summary;
        if s.count == 0 {
            out.push_str(&format!(
                "{:<18} {:>7} {:>7} {:>7} {:>7} {:>6} {:>9.1}  (all {} queries failed)\n",
                r.name, "-", "-", "-", "-", "-", r.mean_time_us, s.failures
            ));
            continue;
        }
        out.push_str(&format!(
            "{:<18} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>5.0}% {:>9.1}  [{}]{}\n",
            r.name,
            s.p25,
            s.median,
            s.p75,
            s.trimmed_mean,
            s.under_fraction * 100.0,
            r.mean_time_us,
            s.ascii_box(span, width),
            if s.failures > 0 {
                format!(" ({} failed)", s.failures)
            } else {
                String::new()
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_query::QueryGraph;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> String {
            format!("fixed-{}", self.0)
        }
        fn estimate(&mut self, _q: &QueryGraph) -> Option<f64> {
            Some(self.0)
        }
    }

    struct Failing;
    impl CardinalityEstimator for Failing {
        fn name(&self) -> String {
            "failing".into()
        }
        fn estimate(&mut self, _q: &QueryGraph) -> Option<f64> {
            None
        }
    }

    fn workload() -> Vec<WorkloadQuery> {
        let q = ceg_query::templates::path(1, &[0]);
        vec![
            WorkloadQuery {
                query: q.clone(),
                template: "t".into(),
                truth: 10.0,
            },
            WorkloadQuery {
                query: q,
                template: "t".into(),
                truth: 100.0,
            },
        ]
    }

    #[test]
    fn runner_collects_errors_and_failures() {
        let w = workload();
        let mut ests: Vec<Box<dyn CardinalityEstimator>> =
            vec![Box::new(Fixed(10.0)), Box::new(Failing)];
        let reports = run_estimators(&w, &mut ests);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].summary.count, 2);
        assert_eq!(reports[0].summary.failures, 0);
        // estimates 10 vs truths 10, 100: errors {0, -1}
        assert_eq!(reports[0].summary.max, 0.0);
        assert_eq!(reports[0].summary.min, -1.0);
        assert_eq!(reports[1].summary.failures, 2);
        assert_eq!(reports[1].summary.count, 0);
    }

    #[test]
    fn table_renders_without_panic() {
        let w = workload();
        let mut ests: Vec<Box<dyn CardinalityEstimator>> =
            vec![Box::new(Fixed(50.0)), Box::new(Failing)];
        let reports = run_estimators(&w, &mut ests);
        let table = render_table("demo", &reports);
        assert!(table.contains("fixed-50"));
        assert!(table.contains("failing"));
        assert!(table.contains("demo"));
    }
}

/// Group a workload by template name and run the estimator set on each
/// group — the paper's per-template supplementary analysis (Section 6.2:
/// "our charts in which we evaluate the 9 estimators on each query
/// template can be found in our github repo").
pub fn run_by_template<'a>(
    workload: &[WorkloadQuery],
    make_estimators: impl Fn() -> Vec<Box<dyn CardinalityEstimator + 'a>>,
) -> Vec<(String, Vec<EstimatorReport>)> {
    let mut templates: Vec<String> = workload.iter().map(|q| q.template.clone()).collect();
    templates.sort();
    templates.dedup();
    templates
        .into_iter()
        .map(|t| {
            let group: Vec<WorkloadQuery> = workload
                .iter()
                .filter(|q| q.template == t)
                .cloned()
                .collect();
            let mut ests = make_estimators();
            let reports = run_estimators(&group, &mut ests);
            (t, reports)
        })
        .collect()
}

#[cfg(test)]
mod template_tests {
    use super::*;
    use ceg_query::QueryGraph;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn estimate(&mut self, _q: &QueryGraph) -> Option<f64> {
            Some(self.0)
        }
    }

    #[test]
    fn groups_by_template() {
        let q = ceg_query::templates::path(1, &[0]);
        let wq = |t: &str, truth: f64| WorkloadQuery {
            query: q.clone(),
            template: t.into(),
            truth,
        };
        let w = vec![wq("a", 10.0), wq("b", 20.0), wq("a", 30.0)];
        let grouped = run_by_template(&w, || {
            vec![Box::new(Fixed(10.0)) as Box<dyn CardinalityEstimator>]
        });
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, "a");
        assert_eq!(grouped[0].1[0].summary.count, 2);
        assert_eq!(grouped[1].1[0].summary.count, 1);
    }
}

/// Render reports as CSV (one row per estimator) for external plotting
/// tools; the exact numbers behind the ASCII box plots.
pub fn render_csv(dataset: &str, workload: &str, reports: &[EstimatorReport]) -> String {
    let mut out = String::from(
        "dataset,workload,estimator,count,failures,p25,median,p75,min,max,trimmed_mean,under_fraction,mean_time_us\n",
    );
    for r in reports {
        let s = &r.summary;
        out.push_str(&format!(
            "{dataset},{workload},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.3}\n",
            r.name,
            s.count,
            s.failures,
            s.p25,
            s.median,
            s.p75,
            s.min,
            s.max,
            s.trimmed_mean,
            s.under_fraction,
            r.mean_time_us
        ));
    }
    out
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use ceg_query::QueryGraph;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn estimate(&mut self, _q: &QueryGraph) -> Option<f64> {
            Some(self.0)
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let q = ceg_query::templates::path(1, &[0]);
        let w = vec![WorkloadQuery {
            query: q,
            template: "t".into(),
            truth: 10.0,
        }];
        let mut ests: Vec<Box<dyn CardinalityEstimator>> = vec![Box::new(Fixed(10.0))];
        let reports = run_estimators(&w, &mut ests);
        let csv = render_csv("imdb", "job", &reports);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("dataset,workload,estimator"));
        assert!(lines[1].starts_with("imdb,job,fixed,1,0,"));
    }
}
