//! Plain-text persistence for workloads.
//!
//! Instantiated workloads (queries + exact cardinalities) are expensive
//! to produce; persisting them makes experiment runs reproducible and
//! lets external tools consume the same query sets. One query per line:
//!
//! ```text
//! <template> <truth> <num_vars> <num_edges> <src> <dst> <label> …
//! ```

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use ceg_query::{QueryEdge, QueryGraph};

use crate::workloads::WorkloadQuery;

/// Serialize a workload.
pub fn write_workload<W: Write>(queries: &[WorkloadQuery], writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# ceg workload v1: template truth num_vars num_edges (src dst label)*"
    )?;
    for wq in queries {
        write!(
            w,
            "{} {} {} {}",
            wq.template,
            wq.truth,
            wq.query.num_vars(),
            wq.query.num_edges()
        )?;
        for e in wq.query.edges() {
            write!(w, " {} {} {}", e.src, e.dst, e.label)?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Parse a workload written by [`write_workload`].
pub fn read_workload<R: BufRead>(reader: R) -> io::Result<Vec<WorkloadQuery>> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {what}", lineno + 1),
            )
        };
        let template = it
            .next()
            .ok_or_else(|| bad("missing template"))?
            .to_string();
        let truth: f64 = it
            .next()
            .ok_or_else(|| bad("missing truth"))?
            .parse()
            .map_err(|_| bad("bad truth"))?;
        let nv: u8 = it
            .next()
            .ok_or_else(|| bad("missing num_vars"))?
            .parse()
            .map_err(|_| bad("bad num_vars"))?;
        let m: usize = it
            .next()
            .ok_or_else(|| bad("missing num_edges"))?
            .parse()
            .map_err(|_| bad("bad num_edges"))?;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let s: u8 = it
                .next()
                .ok_or_else(|| bad("truncated edges"))?
                .parse()
                .map_err(|_| bad("bad src"))?;
            let d: u8 = it
                .next()
                .ok_or_else(|| bad("truncated edges"))?
                .parse()
                .map_err(|_| bad("bad dst"))?;
            let l: u16 = it
                .next()
                .ok_or_else(|| bad("truncated edges"))?
                .parse()
                .map_err(|_| bad("bad label"))?;
            edges.push(QueryEdge::new(s, d, l));
        }
        out.push(WorkloadQuery {
            query: QueryGraph::new(nv, edges),
            template,
            truth,
        });
    }
    Ok(out)
}

/// Save to a file path.
pub fn save_workload(queries: &[WorkloadQuery], path: impl AsRef<Path>) -> io::Result<()> {
    write_workload(queries, std::fs::File::create(path)?)
}

/// Load from a file path.
pub fn load_workload(path: impl AsRef<Path>) -> io::Result<Vec<WorkloadQuery>> {
    read_workload(io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Dataset;
    use crate::workloads::Workload;

    #[test]
    fn roundtrip() {
        let g = Dataset::Hetionet.generate(4);
        let w = Workload::Job.build(&g, 1, 4);
        assert!(!w.is_empty());
        let mut buf = Vec::new();
        write_workload(&w, &mut buf).unwrap();
        let w2 = read_workload(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(w.len(), w2.len());
        for (a, b) in w.iter().zip(&w2) {
            assert_eq!(a.query, b.query);
            assert_eq!(a.truth, b.truth);
            assert_eq!(a.template, b.template);
        }
    }

    #[test]
    fn comments_skipped() {
        let text = "# hello\npath-2 5 3 2 0 1 0 1 2 1\n";
        let w = read_workload(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].truth, 5.0);
        assert_eq!(w[0].query.num_edges(), 2);
    }

    #[test]
    fn truncated_line_is_error() {
        let text = "t 5 3 2 0 1\n";
        assert!(read_workload(io::BufReader::new(text.as_bytes())).is_err());
    }
}
