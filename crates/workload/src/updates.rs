//! Update-stream workloads: scripted edge insertions/deletions for the
//! live-update path.
//!
//! A stream is a flat list of [`UpdateOp`]s — `add`/`del` edge operations
//! punctuated by `commit` barriers — exactly mirroring the service's
//! `ADD_EDGE`/`DEL_EDGE`/`COMMIT` wire commands. [`generate_update_stream`]
//! produces a seeded random stream against a concrete graph (deletions
//! sample real edges, insertions sample the existing domain and label
//! set, so a realistic fraction of operations is effective rather than
//! no-op); the `.upd` text format persists streams for `cegcli update`
//! and the CI smoke script:
//!
//! ```text
//! # comments and blank lines are ignored
//! add <src> <dst> <label>
//! del <src> <dst> <label>
//! commit
//! ```

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use ceg_graph::{GraphDelta, LabelId, LabeledGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scripted update operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert `src -label-> dst`.
    Add {
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    },
    /// Delete `src -label-> dst`.
    Del {
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    },
    /// Apply everything buffered since the previous commit.
    Commit,
}

/// Generate a seeded random update stream against `graph`: `ops` edge
/// operations with a `COMMIT` barrier every `commit_every` of them (and a
/// final one), roughly balanced between insertions of new edges and
/// deletions of edges present at generation time.
///
/// The stream is deterministic in `(graph, ops, commit_every, seed)`.
/// Deletions are sampled from the *initial* edge set, so a later deletion
/// can be a no-op if an earlier one already removed the edge — real
/// client streams have exactly this property, and the service's
/// normalization is expected to absorb it.
pub fn generate_update_stream(
    graph: &LabeledGraph,
    ops: usize,
    commit_every: usize,
    seed: u64,
) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let commit_every = commit_every.max(1);
    let num_labels = graph.num_labels().max(1) as LabelId;
    let num_vertices = graph.num_vertices().max(1) as VertexId;
    let all_edges: Vec<(VertexId, VertexId, LabelId)> = (0..num_labels)
        .flat_map(|l| graph.edges(l).map(move |(s, d)| (s, d, l)))
        .collect();
    let mut stream = Vec::with_capacity(ops + ops / commit_every + 1);
    let mut since_commit = 0usize;
    for _ in 0..ops {
        let delete = !all_edges.is_empty() && rng.random_range(0..2) == 0;
        if delete {
            let (src, dst, label) = all_edges[rng.random_range(0..all_edges.len())];
            stream.push(UpdateOp::Del { src, dst, label });
        } else {
            stream.push(UpdateOp::Add {
                src: rng.random_range(0..num_vertices),
                dst: rng.random_range(0..num_vertices),
                label: rng.random_range(0..num_labels),
            });
        }
        since_commit += 1;
        if since_commit == commit_every {
            stream.push(UpdateOp::Commit);
            since_commit = 0;
        }
    }
    if since_commit > 0 {
        stream.push(UpdateOp::Commit);
    }
    stream
}

/// The graph a stream leaves behind: every operation folded into `base`
/// in order (commit barriers only matter for epoch accounting, not for
/// the final edge set). Tests compare a live server against a cold one
/// loaded with this.
pub fn final_graph(base: &LabeledGraph, stream: &[UpdateOp]) -> LabeledGraph {
    let mut delta = GraphDelta::new();
    for op in stream {
        match *op {
            UpdateOp::Add { src, dst, label } => delta.add_edge(src, dst, label),
            UpdateOp::Del { src, dst, label } => delta.del_edge(src, dst, label),
            UpdateOp::Commit => {}
        }
    }
    base.rebase(&delta)
}

/// Serialize a stream in the `.upd` text format.
pub fn write_updates<W: Write>(stream: &[UpdateOp], writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# ceg updates v1: add|del <src> <dst> <label>, commit")?;
    for op in stream {
        match *op {
            UpdateOp::Add { src, dst, label } => writeln!(w, "add {src} {dst} {label}")?,
            UpdateOp::Del { src, dst, label } => writeln!(w, "del {src} {dst} {label}")?,
            UpdateOp::Commit => writeln!(w, "commit")?,
        }
    }
    w.flush()
}

/// Parse a stream written by [`write_updates`] (or by hand; comments and
/// blank lines are ignored).
pub fn read_updates<R: BufRead>(reader: R) -> io::Result<Vec<UpdateOp>> {
    let mut stream = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let op = it.next().expect("non-empty line has a first token");
        let parsed = match op {
            "commit" => {
                if it.next().is_some() {
                    return Err(bad(lineno, "commit takes no arguments"));
                }
                UpdateOp::Commit
            }
            "add" | "del" => {
                let mut num = |what: &str, max: u64| -> io::Result<u64> {
                    let n: u64 = it
                        .next()
                        .ok_or_else(|| bad(lineno, &format!("missing {what}")))?
                        .parse()
                        .map_err(|_| bad(lineno, &format!("bad {what}")))?;
                    if n > max {
                        return Err(bad(lineno, &format!("{what} out of range")));
                    }
                    Ok(n)
                };
                let src = num("src", VertexId::MAX as u64)? as VertexId;
                let dst = num("dst", VertexId::MAX as u64)? as VertexId;
                let label = num("label", LabelId::MAX as u64)? as LabelId;
                if it.next().is_some() {
                    return Err(bad(lineno, "trailing tokens"));
                }
                if op == "add" {
                    UpdateOp::Add { src, dst, label }
                } else {
                    UpdateOp::Del { src, dst, label }
                }
            }
            other => return Err(bad(lineno, &format!("unknown operation `{other}`"))),
        };
        stream.push(parsed);
    }
    Ok(stream)
}

fn bad(lineno: usize, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("line {}: {msg}", lineno + 1),
    )
}

/// Save a stream to a file path.
pub fn save_updates(stream: &[UpdateOp], path: impl AsRef<Path>) -> io::Result<()> {
    write_updates(stream, std::fs::File::create(path)?)
}

/// Load a stream from a file path.
pub fn load_updates(path: impl AsRef<Path>) -> io::Result<Vec<UpdateOp>> {
    read_updates(io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_graph::GraphBuilder;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 4, 1);
        b.build()
    }

    #[test]
    fn generation_is_deterministic_and_commit_punctuated() {
        let g = toy();
        let a = generate_update_stream(&g, 10, 3, 42);
        let b = generate_update_stream(&g, 10, 3, 42);
        assert_eq!(a, b);
        let c = generate_update_stream(&g, 10, 3, 43);
        assert_ne!(a, c, "different seeds should differ");
        assert_eq!(a.iter().filter(|op| **op == UpdateOp::Commit).count(), 4);
        assert_eq!(a.last(), Some(&UpdateOp::Commit));
        assert_eq!(a.len(), 14);
    }

    #[test]
    fn roundtrip_through_text_format() {
        let g = toy();
        let stream = generate_update_stream(&g, 17, 5, 7);
        let mut buf = Vec::new();
        write_updates(&stream, &mut buf).unwrap();
        let back = read_updates(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(stream, back);
    }

    #[test]
    fn hand_written_files_parse() {
        let text = "# header\n\nadd 0 5 1\ndel 1 2 0\ncommit\n";
        let stream = read_updates(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(
            stream,
            vec![
                UpdateOp::Add {
                    src: 0,
                    dst: 5,
                    label: 1
                },
                UpdateOp::Del {
                    src: 1,
                    dst: 2,
                    label: 0
                },
                UpdateOp::Commit,
            ]
        );
    }

    #[test]
    fn malformed_files_are_rejected() {
        for text in [
            "bogus 1 2 3\n",
            "add 1 2\n",
            "add 1 2 x\n",
            "add 1 2 3 4\n",
            "del 1 2 99999\n",          // label out of range
            "add 4294967296 7 0\n",     // src wider than a VertexId
            "add 7 99999999999999 0\n", // dst wider than a VertexId
            "commit now\n",
        ] {
            assert!(
                read_updates(io::BufReader::new(text.as_bytes())).is_err(),
                "should reject {text:?}"
            );
        }
    }

    #[test]
    fn final_graph_folds_the_whole_stream() {
        let g = toy();
        let stream = vec![
            UpdateOp::Add {
                src: 4,
                dst: 5,
                label: 0,
            },
            UpdateOp::Commit,
            UpdateOp::Del {
                src: 0,
                dst: 1,
                label: 0,
            },
            UpdateOp::Add {
                src: 4,
                dst: 5,
                label: 0,
            }, // duplicate add
            UpdateOp::Commit,
        ];
        let f = final_graph(&g, &stream);
        assert!(f.has_edge(4, 5, 0));
        assert!(!f.has_edge(0, 1, 0));
        assert_eq!(f.num_edges(), g.num_edges()); // +1 -1
    }
}
