//! # ceg-workload
//!
//! Datasets, workloads and experiment infrastructure for reproducing the
//! paper's evaluation (Section 6):
//!
//! * [`datasets`] — seeded synthetic stand-ins for the paper's six
//!   datasets (IMDb, YAGO, DBLP, WatDiv, Hetionet, Epinions); see
//!   docs/ARCHITECTURE.md §D.1 for the substitution rationale,
//! * [`workloads`] — the five workloads (JOB, Acyclic, Cyclic,
//!   G-CARE-Acyclic, G-CARE-Cyclic) instantiated from the paper's query
//!   templates with ground-truth cardinalities,
//! * [`qerror`] — signed log q-errors and the distribution summaries the
//!   paper's box plots report,
//! * [`runner`] — drives a set of estimators over a workload (serially or
//!   across a worker pool via a `parallelism` knob) and renders the
//!   result tables,
//! * [`updates`] — scripted update streams (seeded add/del/commit
//!   generators plus the `.upd` text format) for exercising the
//!   service's live-update path.

pub mod datasets;
pub mod io;
pub mod qerror;
pub mod runner;
pub mod updates;
pub mod workloads;

pub use datasets::{Dataset, DatasetSpec};
pub use qerror::{signed_log_qerror, QErrorSummary};
pub use runner::{run_estimators, run_estimators_parallel, EstimatorReport};
pub use updates::{generate_update_stream, UpdateOp};
pub use workloads::{Workload, WorkloadQuery};
