//! Seeded synthetic stand-ins for the paper's six datasets.
//!
//! The real datasets (Table 2: IMDb 65M edges, YAGO 16M, DBLP 56M, WatDiv
//! 11M, Hetionet 2M, Epinions 509K) are not available offline, so each is
//! replaced by a generator that reproduces the structural properties the
//! estimator-accuracy experiments depend on:
//!
//! * **degree skew** — Zipfian source/destination sampling (real graphs'
//!   heavy tails drive both the optimistic underestimation and the
//!   pessimistic bounds' looseness),
//! * **label correlation** — labels prefer (community → community) lanes,
//!   so co-occurring labels are correlated, defeating independence
//!   assumptions exactly as in real knowledge graphs,
//! * **Epinions' uncorrelated labels** — the paper added 50 random labels
//!   to Epinions precisely to have a correlation-free control; our
//!   Epinions generator assigns labels uniformly at random.
//!
//! Sizes are scaled (~10³–10⁴ vertices) so exact ground truth stays
//! computable; label counts are scaled with them to keep per-label
//! densities in a realistic range.

use ceg_graph::{GraphBuilder, LabelId, LabeledGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The six datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    Imdb,
    Yago,
    Dblp,
    Watdiv,
    Hetionet,
    Epinions,
}

impl Dataset {
    /// All datasets in the paper's Table 2 order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Imdb,
        Dataset::Yago,
        Dataset::Dblp,
        Dataset::Watdiv,
        Dataset::Hetionet,
        Dataset::Epinions,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Imdb => "IMDb",
            Dataset::Yago => "YAGO",
            Dataset::Dblp => "DBLP",
            Dataset::Watdiv => "WatDiv",
            Dataset::Hetionet => "Hetionet",
            Dataset::Epinions => "Epinions",
        }
    }

    /// The domain label from Table 2.
    pub fn domain(&self) -> &'static str {
        match self {
            Dataset::Imdb => "Movies",
            Dataset::Yago => "Knowledge Graph",
            Dataset::Dblp => "Citations",
            Dataset::Watdiv => "Products",
            Dataset::Hetionet => "Social Networks",
            Dataset::Epinions => "Consumer Reviews",
        }
    }

    /// Scaled generation parameters (see module docs).
    pub fn spec(&self) -> DatasetSpec {
        match self {
            // ratios follow Table 2: IMDb is the largest and densest
            Dataset::Imdb => DatasetSpec::correlated(*self, 9_000, 22_000, 32, 16, 1.1),
            Dataset::Yago => DatasetSpec::correlated(*self, 8_000, 10_000, 24, 12, 0.9),
            Dataset::Dblp => DatasetSpec::correlated(*self, 8_000, 19_000, 16, 10, 1.0),
            Dataset::Watdiv => DatasetSpec::correlated(*self, 3_000, 11_000, 24, 8, 0.8),
            Dataset::Hetionet => DatasetSpec::correlated(*self, 1_500, 9_000, 12, 6, 1.2),
            Dataset::Epinions => DatasetSpec::uncorrelated(*self, 2_000, 8_000, 16),
        }
    }

    /// Generate the graph with a deterministic seed.
    pub fn generate(&self, seed: u64) -> LabeledGraph {
        self.spec().generate(seed)
    }
}

/// Generation parameters of one dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    pub dataset: Dataset,
    pub num_vertices: usize,
    pub num_edges: usize,
    pub num_labels: usize,
    /// Number of vertex communities (label-correlation structure); 0
    /// disables correlation (Epinions).
    pub communities: usize,
    /// Zipf skew exponent for endpoint sampling.
    pub skew: f64,
}

impl DatasetSpec {
    fn correlated(
        dataset: Dataset,
        num_vertices: usize,
        num_edges: usize,
        num_labels: usize,
        communities: usize,
        skew: f64,
    ) -> Self {
        DatasetSpec {
            dataset,
            num_vertices,
            num_edges,
            num_labels,
            communities,
            skew,
        }
    }

    fn uncorrelated(
        dataset: Dataset,
        num_vertices: usize,
        num_edges: usize,
        num_labels: usize,
    ) -> Self {
        DatasetSpec {
            dataset,
            num_vertices,
            num_edges,
            num_labels,
            communities: 0,
            skew: 0.9,
        }
    }

    /// Generate the labeled graph.
    pub fn generate(&self, seed: u64) -> LabeledGraph {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut b = GraphBuilder::with_labels(self.num_vertices, self.num_labels);

        if self.communities == 0 {
            // Epinions-style: a skewed random graph, labels uniform —
            // guaranteed label-independence.
            let zipf = ZipfSampler::new(self.num_vertices, self.skew);
            while b.len() < self.num_edges {
                let s = zipf.sample(&mut rng);
                let d = rng.random_range(0..self.num_vertices as VertexId);
                let l = rng.random_range(0..self.num_labels as LabelId);
                if s != d {
                    b.add_edge(s, d, l);
                }
            }
            return b.build();
        }

        // Correlated datasets: each label gets a preferred source and
        // destination community lane; most of its edges follow the lane.
        let c = self.communities;
        let comm_size = self.num_vertices / c;
        let zipf = ZipfSampler::new(comm_size, self.skew);
        let lanes: Vec<(usize, usize)> = (0..self.num_labels)
            .map(|_| (rng.random_range(0..c), rng.random_range(0..c)))
            .collect();
        // labels are themselves Zipf-popular, like real label frequencies
        let label_zipf = ZipfSampler::new(self.num_labels, 0.8);
        while b.len() < self.num_edges {
            let l = label_zipf.sample(&mut rng) as usize;
            let (mut sc, mut dc) = lanes[l];
            // 20% of edges leave the lane: cross-community noise
            if rng.random_bool(0.2) {
                sc = rng.random_range(0..c);
            }
            if rng.random_bool(0.2) {
                dc = rng.random_range(0..c);
            }
            let s = (sc * comm_size) as VertexId + zipf.sample(&mut rng);
            let d = (dc * comm_size) as VertexId + zipf.sample(&mut rng);
            if s != d {
                b.add_edge(s, d, l as LabelId);
            }
        }
        b.build()
    }
}

/// Inverse-CDF Zipf sampler over `0..n` with exponent `alpha`.
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> VertexId {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i.min(self.cdf.len() - 1)) as VertexId,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate() {
        for d in Dataset::ALL {
            let g = d.generate(1);
            let spec = d.spec();
            assert_eq!(g.num_vertices(), spec.num_vertices, "{}", d.name());
            assert_eq!(g.num_labels(), spec.num_labels, "{}", d.name());
            // duplicates are removed, so allow some slack below the target
            assert!(
                g.num_edges() > spec.num_edges / 2,
                "{}: {} edges",
                d.name(),
                g.num_edges()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Dblp.generate(7);
        let b = Dataset::Dblp.generate(7);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.all_edges().collect();
        let eb: Vec<_> = b.all_edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::Dblp.generate(1);
        let b = Dataset::Dblp.generate(2);
        let ea: Vec<_> = a.all_edges().collect();
        let eb: Vec<_> = b.all_edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn degree_skew_is_present() {
        let g = Dataset::Imdb.generate(3);
        let max_deg = (0..g.num_labels() as LabelId)
            .map(|l| g.max_out_degree(l))
            .max()
            .unwrap();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > 5.0 * avg,
            "expected heavy tail: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn every_label_is_populated() {
        for d in [Dataset::Imdb, Dataset::Epinions] {
            let g = d.generate(5);
            let empty = (0..g.num_labels() as LabelId)
                .filter(|&l| g.label_count(l) == 0)
                .count();
            // Zipf label popularity may leave at most a couple of labels
            // nearly empty, but not most of them
            assert!(
                empty < g.num_labels() / 4,
                "{}: {empty} empty labels",
                d.name()
            );
        }
    }

    #[test]
    fn zipf_sampler_is_skewed() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[50] * 5);
    }
}
